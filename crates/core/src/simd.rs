//! Explicit SIMD kernels with runtime ISA dispatch.
//!
//! The register-blocked kernels of [`crate::blocked`] break the
//! per-element dependency so a compiler *can* vectorize them — but a
//! stock `cargo build` targets the x86-64 baseline (SSE2) and leaves the
//! speedup on the table, and wide wrapping-integer multiplies never
//! autovectorized profitably at all. This module writes the hot loops
//! directly against `core::arch`, selected at runtime with
//! `is_x86_feature_detected!`, so a distributed binary gets the vector
//! kernels on whatever CPU it lands on:
//!
//! * **local solve** — the blocked triangular FIR plus `B×k`
//!   carry-factor application at a full [`BLOCK`] (= 16) elements per
//!   step (`f64`/`i64`: 4 vectors of 4 lanes, `f32`/`i32`: 2 vectors of
//!   8). The triangular part is the *transposed* convolution
//!   `y[i] = Σ t[j]·h[i−j]`: each input is broadcast once and
//!   multiply-added against shifted windows of a read-only zero-padded
//!   impulse table, so the hot loop has no staging copies and no
//!   store-to-load-forwarding hazards. The per-block carry fold is the
//!   only serial dependency, and its carries never leave the register
//!   file: the next block's broadcasts are lane permutes of the top
//!   accumulator, not a store + scalar reload.
//! * **steady-state FIR map** — the `fir_in_place` top-of-chunk loop,
//!   vectorized in descending windows so every load still sees original
//!   input.
//! * **correction apply** — the dense / truncated-tail
//!   `chunk[i] += list[i]·carry` folds from [`crate::plan`].
//!
//! Integer kernels are **exact** (wrapping lane arithmetic matches the
//! scalar loops bit for bit). `i64` has no 64-bit lane multiply below
//! AVX-512: the AVX2 kernel builds the wrapping product from half-width
//! (32-bit) pieces — `lo·lo + ((lo·hi + hi·lo) << 32)` via
//! `_mm256_mul_epu32`/`_mm256_mullo_epi32` — and the AVX-512(VL+DQ)
//! kernel uses `_mm256_mullo_epi64` directly. This is what finally makes
//! integer blocking *win* rather than regress. Float kernels contract
//! multiply-adds with FMA, so they differ from the scalar reference at
//! the ULP level (same class of reassociation the blocked kernels
//! already accept).
//!
//! The portable tier ([`Isa::Portable`]) reuses the blocked formulation
//! and compiles everywhere (including non-x86 targets such as aarch64,
//! where the autovectorizer sees the same dependency-free loops);
//! explicit NEON lanes are a possible follow-up but are not required for
//! correctness anywhere.
//!
//! Which tier actually runs is governed by [`crate::kernel`]
//! (`PLR_KERNEL` env / programmatic override) through
//! [`SolveKernel::select`](crate::blocked::SolveKernel::select); the
//! `*_with` entry points here take an explicit [`Isa`] for differential
//! tests and benches.

use crate::blocked::{BlockedKernel, BLOCK, MAX_BLOCKED_ORDER};
use crate::element::Element;
use crate::kernel::{self, KernelTier};
use crate::serial;
use std::any::TypeId;

/// Maximum FIR tap count served by the vector map kernels (matches the
/// unrolled scalar specializations in [`crate::blocked::fir_in_place`]).
pub const MAX_FIR_TAPS: usize = 4;

/// Instruction-set tier an explicit kernel targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// The blocked formulation in plain Rust — compiled everywhere, no
    /// feature detection needed.
    Portable,
    /// x86-64 AVX2 + FMA 256-bit kernels (i64 multiplies emulated from
    /// 32-bit halves).
    Avx2,
    /// x86-64 AVX-512VL+DQ 256-bit kernels (native 64-bit lane
    /// multiply via `vpmullq`); only the `i64` kernels differ from AVX2.
    Avx512,
}

impl Isa {
    /// Whether the running CPU can execute kernels of this tier.
    pub fn available(self) -> bool {
        match self {
            Isa::Portable => true,
            Isa::Avx2 => have_avx2(),
            Isa::Avx512 => have_avx512(),
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn have_avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(target_arch = "x86_64")]
fn have_avx512() -> bool {
    have_avx2()
        && std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512dq")
        && std::arch::is_x86_feature_detected!("avx512vl")
}

#[cfg(not(target_arch = "x86_64"))]
fn have_avx2() -> bool {
    false
}

#[cfg(not(target_arch = "x86_64"))]
fn have_avx512() -> bool {
    false
}

fn is<T: 'static, U: 'static>() -> bool {
    TypeId::of::<T>() == TypeId::of::<U>()
}

/// `true` when explicit kernels exist for this element type (`f32`,
/// `f64`, `i32`, `i64`). Exotic elements (e.g. the max-plus semiring)
/// stay on the scalar reference loops.
pub fn supported<T: Element>() -> bool {
    is::<T, f32>() || is::<T, f64>() || is::<T, i32>() || is::<T, i64>()
}

/// Every ISA with a working *solve* kernel for `T` on this CPU, slowest
/// first. Empty for unsupported element types. Used by the differential
/// suite to exercise each kernel the dispatcher could pick.
pub fn available_isas<T: Element>() -> Vec<Isa> {
    if !supported::<T>() {
        return Vec::new();
    }
    let mut isas = vec![Isa::Portable];
    if have_avx2() {
        isas.push(Isa::Avx2);
    }
    // Only the i64 kernels have a distinct AVX-512 form (vpmullq).
    if is::<T, i64>() && have_avx512() {
        isas.push(Isa::Avx512);
    }
    isas
}

/// The vector ISA [`KernelTier::Auto`] dispatch prefers for `T`, `None`
/// when no *hardware* vector tier is detected (the portable tier is
/// never "preferred": without vector units the blocked/scalar kernels
/// are already the right call).
///
/// `i64` is the deliberate exception: it gets a hardware tier only with
/// AVX-512 (`vpmullq`). The AVX2 half-width multiply emulation is kept
/// for differential coverage, but at ~5 instructions per lane multiply
/// it measured *below* the scalar chain on the transposed-convolution
/// solve, so auto dispatch prefers the blocked formulation there.
pub fn best_isa<T: Element>() -> Option<Isa> {
    if !supported::<T>() {
        return None;
    }
    if is::<T, i64>() {
        return have_avx512().then_some(Isa::Avx512);
    }
    have_avx2().then_some(Isa::Avx2)
}

// ---------------------------------------------------------------------
// Slice reinterpretation: dispatch on the *concrete* element type
// without widening the `Element` trait (exotic elements never reach
// these paths). Each cast is an identity transmute guarded by TypeId.
// ---------------------------------------------------------------------

fn cast_mut<T: 'static, U: 'static>(data: &mut [T]) -> Option<&mut [U]> {
    // SAFETY: T and U are the same type (TypeId equality), so layout,
    // validity and lifetime are all the identity.
    is::<T, U>().then(|| unsafe { &mut *(data as *mut [T] as *mut [U]) })
}

fn cast_ref<T: 'static, U: 'static>(data: &[T]) -> Option<&[U]> {
    // SAFETY: as above.
    is::<T, U>().then(|| unsafe { &*(data as *const [T] as *const [U]) })
}

fn cast_carries<T: 'static, U: 'static>(
    c: &mut [T; MAX_BLOCKED_ORDER],
) -> Option<&mut [U; MAX_BLOCKED_ORDER]> {
    // SAFETY: as above.
    is::<T, U>().then(|| unsafe { &mut *(c as *mut [T; MAX_BLOCKED_ORDER]).cast() })
}

fn cast_block<T: 'static, U: 'static>(b: &[T; BLOCK]) -> Option<&[U; BLOCK]> {
    // SAFETY: as above.
    is::<T, U>().then(|| unsafe { &*(b as *const [T; BLOCK]).cast() })
}

fn cast_rows<T: 'static, U: 'static>(rows: &[[T; BLOCK]]) -> Option<&[[U; BLOCK]]> {
    // SAFETY: as above.
    is::<T, U>().then(|| unsafe { &*(rows as *const [[T; BLOCK]] as *const [[U; BLOCK]]) })
}

fn cast_val<T: Copy + 'static, U: Copy + 'static>(v: T) -> Option<U> {
    // SAFETY: as above; transmute_copy of a value to its own type.
    is::<T, U>().then(|| unsafe { std::mem::transmute_copy(&v) })
}

/// An explicit-SIMD local-solve kernel for one pure-feedback recurrence
/// of order `1..=`[`MAX_BLOCKED_ORDER`], bound to one [`Isa`].
///
/// The precomputed tables (impulse-response prefix, carry-factor rows)
/// are shared with the blocked formulation — the vector step size `B`
/// divides [`BLOCK`], and factor lists for shorter blocks are prefixes
/// of longer ones.
#[derive(Debug, Clone)]
pub struct SimdKernel<T> {
    inner: BlockedKernel<T>,
    isa: Isa,
}

impl<T: Element> SimdKernel<T> {
    /// Builds a kernel on the best tier this CPU offers for `T`, falling
    /// back to the portable formulation when no vector ISA is detected.
    /// `None` when the element type has no explicit kernels or the order
    /// is outside `1..=`[`MAX_BLOCKED_ORDER`].
    pub fn try_new(feedback: &[T]) -> Option<Self> {
        Self::try_new_with(feedback, best_isa::<T>().unwrap_or(Isa::Portable))
    }

    /// Builds a kernel pinned to one [`Isa`] (differential tests and
    /// benches). `None` additionally when the CPU lacks the ISA.
    pub fn try_new_with(feedback: &[T], isa: Isa) -> Option<Self> {
        if !supported::<T>() || !isa.available() {
            return None;
        }
        Some(SimdKernel {
            inner: BlockedKernel::try_new(feedback)?,
            isa,
        })
    }

    /// The kernel [`KernelTier::Auto`] dispatch would run for this
    /// feedback, `None` when no hardware vector tier is detected (the
    /// caller then falls back to blocked/scalar selection).
    pub fn preferred(feedback: &[T]) -> Option<Self> {
        Self::try_new_with(feedback, best_isa::<T>()?)
    }

    /// The ISA this kernel executes on.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// The recurrence order `k`.
    pub fn order(&self) -> usize {
        self.inner.order()
    }

    /// The feedback vector this kernel solves.
    pub fn feedback(&self) -> &[T] {
        self.inner.feedback()
    }

    /// Solves `y[i] = t[i] + Σ b-j·y[i-j]` in place with zero history.
    pub fn solve_in_place(&self, data: &mut [T]) {
        self.solve_in_place_with_history(&[], data);
    }

    /// Solves in place continuing from explicit history (`history[0]` is
    /// the value just before `data[0]`), matching
    /// [`serial::recursive_in_place_with_history`].
    pub fn solve_in_place_with_history(&self, history: &[T], data: &mut [T]) {
        let k = self.order();
        let mut carries = [T::zero(); MAX_BLOCKED_ORDER];
        for (c, &h) in carries.iter_mut().zip(history.iter().take(k)) {
            *c = h;
        }
        let done = self.solve_vector_blocks(&mut carries, data);
        let tail = &mut data[done..];
        if !tail.is_empty() {
            serial::recursive_in_place_with_history(self.feedback(), &carries[..k], tail);
        }
    }

    /// Runs the vector kernel over as many full `B`-blocks as fit,
    /// updating `carries` (most recent output first) and returning the
    /// element count processed.
    fn solve_vector_blocks(&self, carries: &mut [T; MAX_BLOCKED_ORDER], data: &mut [T]) -> usize {
        let k = self.order();
        #[cfg(target_arch = "x86_64")]
        if self.isa != Isa::Portable {
            let imp = self.inner.impulse();
            let rows = self.inner.factors();
            if let (Some(d), Some(c)) = (cast_mut::<T, f64>(data), cast_carries::<T, f64>(carries))
            {
                let (imp, rows) = (cast_block(imp).unwrap(), cast_rows(rows).unwrap());
                // SAFETY: construction verified AVX2+FMA is available.
                return unsafe { x86::solve_f64_avx2(imp, rows, k, c, d) };
            }
            if let (Some(d), Some(c)) = (cast_mut::<T, f32>(data), cast_carries::<T, f32>(carries))
            {
                let (imp, rows) = (cast_block(imp).unwrap(), cast_rows(rows).unwrap());
                // SAFETY: as above.
                return unsafe { x86::solve_f32_avx2(imp, rows, k, c, d) };
            }
            if let (Some(d), Some(c)) = (cast_mut::<T, i32>(data), cast_carries::<T, i32>(carries))
            {
                let (imp, rows) = (cast_block(imp).unwrap(), cast_rows(rows).unwrap());
                // SAFETY: as above.
                return unsafe { x86::solve_i32_avx2(imp, rows, k, c, d) };
            }
            if let (Some(d), Some(c)) = (cast_mut::<T, i64>(data), cast_carries::<T, i64>(carries))
            {
                let (imp, rows) = (cast_block(imp).unwrap(), cast_rows(rows).unwrap());
                // SAFETY: construction verified the specific ISA.
                return match self.isa {
                    Isa::Avx512 => unsafe { x86::solve_i64_avx512(imp, rows, k, c, d) },
                    _ => unsafe { x86::solve_i64_avx2(imp, rows, k, c, d) },
                };
            }
        }
        // Portable tier (and any unreachable type/ISA residue): the
        // blocked formulation, block by block.
        let n = data.len() - data.len() % BLOCK;
        for block in data[..n].chunks_exact_mut(BLOCK) {
            let block: &mut [T; BLOCK] = block.try_into().expect("exact chunks");
            self.inner.solve_block(block, carries);
            for (r, c) in carries.iter_mut().enumerate().take(k) {
                *c = block[BLOCK - 1 - r];
            }
        }
        n
    }
}

/// `true` when the effective kernel tier permits the explicit-SIMD map
/// and correction loops (`Auto` and `Simd`; forcing `scalar` or
/// `blocked` keeps those stages on their reference loops so the forced
/// tier is a true baseline).
fn tier_allows() -> bool {
    matches!(kernel::tier(), KernelTier::Auto | KernelTier::Simd)
}

/// Vectorizes the top of [`fir_in_place`]'s steady state on the best
/// detected ISA: processes the highest `⌊(len−head)/L⌋·L` elements in
/// descending vector windows and returns how many it handled (0 when the
/// tier, type, tap count or CPU rule it out). The caller finishes
/// `[head, len−returned)` with the scalar steady loop.
///
/// [`fir_in_place`]: crate::blocked::fir_in_place
pub fn fir_steady_in_place<T: Element>(fir: &[T], chunk: &mut [T], head: usize) -> usize {
    if !tier_allows() {
        return 0;
    }
    match best_isa::<T>() {
        Some(isa) => fir_steady_with(isa, fir, chunk, head),
        None => 0,
    }
}

/// [`fir_steady_in_place`] pinned to one [`Isa`] (no tier gating) —
/// differential tests and benches. Returns 0 for [`Isa::Portable`],
/// whose steady state *is* the scalar loop.
pub fn fir_steady_with<T: Element>(isa: Isa, fir: &[T], chunk: &mut [T], head: usize) -> usize {
    let p = fir.len();
    if p == 0 || p > MAX_FIR_TAPS || chunk.len() <= head || !isa.available() {
        return 0;
    }
    #[cfg(target_arch = "x86_64")]
    if isa != Isa::Portable {
        if let (Some(c), Some(f)) = (cast_mut::<T, f64>(chunk), cast_ref::<T, f64>(fir)) {
            // SAFETY: `isa.available()` verified AVX2+FMA above.
            return unsafe { x86::fir_steady_f64_avx2(f, c, head) };
        }
        if let (Some(c), Some(f)) = (cast_mut::<T, f32>(chunk), cast_ref::<T, f32>(fir)) {
            // SAFETY: as above.
            return unsafe { x86::fir_steady_f32_avx2(f, c, head) };
        }
        if let (Some(c), Some(f)) = (cast_mut::<T, i32>(chunk), cast_ref::<T, i32>(fir)) {
            // SAFETY: as above.
            return unsafe { x86::fir_steady_i32_avx2(f, c, head) };
        }
        if let (Some(c), Some(f)) = (cast_mut::<T, i64>(chunk), cast_ref::<T, i64>(fir)) {
            // SAFETY: Avx512 availability implies its feature bits.
            return match isa {
                Isa::Avx512 => unsafe { x86::fir_steady_i64_avx512(f, c, head) },
                _ => unsafe { x86::fir_steady_i64_avx2(f, c, head) },
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = isa;
    0
}

/// Correction-apply fold `dst[i] += list[i]·carry` over
/// `min(dst.len(), list.len())` elements on the best detected ISA.
/// Returns `false` (touching nothing) when the tier, element type or CPU
/// rules the vector form out — the caller then runs its scalar fold.
pub fn axpy_in_place<T: Element>(dst: &mut [T], list: &[T], carry: T) -> bool {
    if !tier_allows() {
        return false;
    }
    match best_isa::<T>() {
        Some(isa) => axpy_with(isa, dst, list, carry),
        None => false,
    }
}

/// [`axpy_in_place`] pinned to one [`Isa`] (no tier gating) —
/// differential tests and benches. `false` for [`Isa::Portable`].
pub fn axpy_with<T: Element>(isa: Isa, dst: &mut [T], list: &[T], carry: T) -> bool {
    if !isa.available() {
        return false;
    }
    let n = dst.len().min(list.len());
    #[cfg(target_arch = "x86_64")]
    if isa != Isa::Portable {
        let done = if let (Some(d), Some(l), Some(c)) = (
            cast_mut::<T, f64>(dst),
            cast_ref::<T, f64>(list),
            cast_val::<T, f64>(carry),
        ) {
            // SAFETY: `isa.available()` verified AVX2+FMA above.
            Some(unsafe { x86::axpy_f64_avx2(d, l, c) })
        } else if let (Some(d), Some(l), Some(c)) = (
            cast_mut::<T, f32>(dst),
            cast_ref::<T, f32>(list),
            cast_val::<T, f32>(carry),
        ) {
            // SAFETY: as above.
            Some(unsafe { x86::axpy_f32_avx2(d, l, c) })
        } else if let (Some(d), Some(l), Some(c)) = (
            cast_mut::<T, i32>(dst),
            cast_ref::<T, i32>(list),
            cast_val::<T, i32>(carry),
        ) {
            // SAFETY: as above.
            Some(unsafe { x86::axpy_i32_avx2(d, l, c) })
        } else if let (Some(d), Some(l), Some(c)) = (
            cast_mut::<T, i64>(dst),
            cast_ref::<T, i64>(list),
            cast_val::<T, i64>(carry),
        ) {
            // SAFETY: Avx512 availability implies its feature bits.
            Some(match isa {
                Isa::Avx512 => unsafe { x86::axpy_i64_avx512(d, l, c) },
                _ => unsafe { x86::axpy_i64_avx2(d, l, c) },
            })
        } else {
            None
        };
        if let Some(done) = done {
            // Scalar remainder above the vector prefix.
            for i in done..n {
                dst[i] = dst[i].add(list[i].mul(carry));
            }
            return true;
        }
    }
    false
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The `core::arch` kernel bodies. Every function is gated by a
    //! `#[target_feature]` attribute and must only be reached through
    //! the runtime-detection guards in the parent module.
    #![allow(unsafe_op_in_unsafe_fn)]

    use super::BLOCK;
    use core::arch::x86_64::*;

    /// Wrapping 64×64→64 lane multiply from 32-bit halves (AVX2 has no
    /// `vpmullq`): `a·b mod 2⁶⁴ = aL·bL + ((aL·bH + aH·bL) << 32)`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_epi64_avx2(a: __m256i, b: __m256i) -> __m256i {
        let bswap = _mm256_shuffle_epi32::<0xB1>(b); // [bH, bL] per lane
        let prodlh = _mm256_mullo_epi32(a, bswap); // [aL·bH, aH·bL] (low 32)
        let prodlh2 = _mm256_hadd_epi32(prodlh, _mm256_setzero_si256());
        let prodlh3 = _mm256_shuffle_epi32::<0x73>(prodlh2); // (sums) << 32
        let prodll = _mm256_mul_epu32(a, b); // aL·bL, full 64
        _mm256_add_epi64(prodll, prodlh3)
    }

    /// AVX-512VL+DQ native wrapping 64-bit lane multiply.
    #[inline]
    #[target_feature(enable = "avx512dq,avx512vl")]
    unsafe fn mul_epi64_avx512(a: __m256i, b: __m256i) -> __m256i {
        _mm256_mullo_epi64(a, b)
    }

    /// Broadcasts 64-bit lane `lane` of `v` to every lane (runtime lane
    /// index — `vpermpd` takes only immediates, `vpermd` takes a vector).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn bcast_lane64(v: __m256i, lane: usize) -> __m256i {
        let base = _mm256_setr_epi32(0, 1, 0, 1, 0, 1, 0, 1);
        let idx = _mm256_add_epi32(_mm256_set1_epi32((2 * lane) as i32), base);
        _mm256_permutevar8x32_epi32(v, idx)
    }

    /// Broadcasts 32-bit lane `lane` of `v` to every lane.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn bcast_lane32(v: __m256i, lane: usize) -> __m256i {
        _mm256_permutevar8x32_epi32(v, _mm256_set1_epi32(lane as i32))
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn bcast_lane_pd(v: __m256d, lane: usize) -> __m256d {
        _mm256_castsi256_pd(bcast_lane64(_mm256_castpd_si256(v), lane))
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn bcast_lane_ps(v: __m256, lane: usize) -> __m256 {
        _mm256_castsi256_ps(bcast_lane32(_mm256_castps_si256(v), lane))
    }

    /// Generates one local-solve kernel working a full [`BLOCK`] per
    /// step as `V = BLOCK / L` accumulator vectors.
    ///
    /// The triangular FIR is computed as the transposed convolution
    /// `y[i] = Σ_j t[j]·h[i−j]`: each input is broadcast once and
    /// multiply-added against a shifted unaligned window of `hpad`, the
    /// impulse response padded with `BLOCK−1` leading zeros (negative
    /// indices read zero). `hpad` is written once per call and only read
    /// in the loop, so — unlike a per-block staging copy — the loads
    /// never collide with an in-flight store. The carry fold is the only
    /// cross-block dependency, and its chain stays in registers: the
    /// next block's carry broadcasts are lane permutes of the top
    /// accumulator; the scalar `carries` array is materialized once
    /// after the loop.
    macro_rules! float_solve {
        ($name:ident, $feat:literal, $elem:ty, $lanes:expr,
         $loadu:ident, $storeu:ident, $set1:ident, $fmadd:ident, $zero:ident, $bcast:ident) => {
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $name(
                impulse: &[$elem; BLOCK],
                factors: &[[$elem; BLOCK]],
                k: usize,
                carries: &mut [$elem; 4],
                data: &mut [$elem],
            ) -> usize {
                const L: usize = $lanes;
                const V: usize = BLOCK / L;
                let nblocks = data.len() / BLOCK;
                if nblocks == 0 {
                    return 0;
                }
                let mut hpad = [0 as $elem; 2 * BLOCK - 1];
                hpad[BLOCK - 1..].copy_from_slice(impulse);
                let hp = hpad.as_ptr().add(BLOCK - 1); // &h[0]
                let mut f = [[$zero(); V]; 4];
                for r in 0..k {
                    for m in 0..V {
                        f[r][m] = $loadu(factors[r].as_ptr().add(m * L));
                    }
                }
                // Seed the register-resident carry vector: lane L-1-r
                // is where block outputs leave carry r.
                let mut seed = [0 as $elem; L];
                for r in 0..k {
                    seed[L - 1 - r] = carries[r];
                }
                let mut top = $loadu(seed.as_ptr());
                for b in 0..nblocks {
                    let ptr = data.as_mut_ptr().add(b * BLOCK);
                    let mut acc = [$zero(); V];
                    for j in 0..BLOCK {
                        let t = $set1(*ptr.add(j));
                        for m in (j / L)..V {
                            acc[m] = $fmadd(t, $loadu(hp.add(m * L).sub(j)), acc[m]);
                        }
                    }
                    for r in 0..k {
                        let c = $bcast(top, L - 1 - r);
                        for m in 0..V {
                            acc[m] = $fmadd(f[r][m], c, acc[m]);
                        }
                    }
                    for m in 0..V {
                        $storeu(ptr.add(m * L), acc[m]);
                    }
                    top = acc[V - 1];
                }
                let mut fin = [0 as $elem; L];
                $storeu(fin.as_mut_ptr(), top);
                for r in 0..k {
                    carries[r] = fin[L - 1 - r];
                }
                nblocks * BLOCK
            }
        };
    }

    /// Integer counterpart of [`float_solve`]: wrapping add/mul lanes,
    /// `si256` loads, multiply supplied per ISA.
    macro_rules! int_solve {
        ($name:ident, $feat:literal, $elem:ty, $lanes:expr,
         $set1:ident, $add:ident, $mul:path, $bcast:ident) => {
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $name(
                impulse: &[$elem; BLOCK],
                factors: &[[$elem; BLOCK]],
                k: usize,
                carries: &mut [$elem; 4],
                data: &mut [$elem],
            ) -> usize {
                const L: usize = $lanes;
                const V: usize = BLOCK / L;
                let nblocks = data.len() / BLOCK;
                if nblocks == 0 {
                    return 0;
                }
                let mut hpad = [0 as $elem; 2 * BLOCK - 1];
                hpad[BLOCK - 1..].copy_from_slice(impulse);
                let hp = hpad.as_ptr().add(BLOCK - 1); // &h[0]
                let mut f = [[_mm256_setzero_si256(); V]; 4];
                for r in 0..k {
                    for m in 0..V {
                        f[r][m] =
                            _mm256_loadu_si256(factors[r].as_ptr().add(m * L) as *const __m256i);
                    }
                }
                let mut seed = [0 as $elem; L];
                for r in 0..k {
                    seed[L - 1 - r] = carries[r];
                }
                let mut top = _mm256_loadu_si256(seed.as_ptr() as *const __m256i);
                for b in 0..nblocks {
                    let ptr = data.as_mut_ptr().add(b * BLOCK);
                    let mut acc = [_mm256_setzero_si256(); V];
                    for j in 0..BLOCK {
                        let t = $set1(*ptr.add(j));
                        for m in (j / L)..V {
                            let x = _mm256_loadu_si256(hp.add(m * L).sub(j) as *const __m256i);
                            acc[m] = $add(acc[m], $mul(t, x));
                        }
                    }
                    for r in 0..k {
                        let c = $bcast(top, L - 1 - r);
                        for m in 0..V {
                            acc[m] = $add(acc[m], $mul(f[r][m], c));
                        }
                    }
                    for m in 0..V {
                        _mm256_storeu_si256(ptr.add(m * L) as *mut __m256i, acc[m]);
                    }
                    top = acc[V - 1];
                }
                let mut fin = [0 as $elem; L];
                _mm256_storeu_si256(fin.as_mut_ptr() as *mut __m256i, top);
                for r in 0..k {
                    carries[r] = fin[L - 1 - r];
                }
                nblocks * BLOCK
            }
        };
    }

    /// Steady-state FIR map: descending `L`-wide windows from the top of
    /// the chunk (loads precede the window's store, and lower windows
    /// are untouched original input), scalar low remainder left to the
    /// caller. Returns elements processed.
    macro_rules! float_fir {
        ($name:ident, $feat:literal, $elem:ty, $lanes:expr,
         $loadu:ident, $storeu:ident, $set1:ident, $mul:ident, $fmadd:ident, $zero:ident) => {
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $name(fir: &[$elem], chunk: &mut [$elem], head: usize) -> usize {
                const L: usize = $lanes;
                let p = fir.len();
                let n = chunk.len();
                let vecs = (n - head) / L;
                if vecs == 0 {
                    return 0;
                }
                let mut taps = [$zero(); 4];
                for (j, t) in taps.iter_mut().enumerate().take(p) {
                    *t = $set1(fir[j]);
                }
                let base = chunk.as_mut_ptr();
                for v in 0..vecs {
                    let i0 = n - L * (v + 1);
                    let mut acc = $mul(taps[0], $loadu(base.add(i0)));
                    for j in 1..p {
                        acc = $fmadd(taps[j], $loadu(base.add(i0 - j)), acc);
                    }
                    $storeu(base.add(i0), acc);
                }
                vecs * L
            }
        };
    }

    /// Integer counterpart of [`float_fir`].
    macro_rules! int_fir {
        ($name:ident, $feat:literal, $elem:ty, $lanes:expr,
         $set1:ident, $add:ident, $mul:path) => {
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $name(fir: &[$elem], chunk: &mut [$elem], head: usize) -> usize {
                const L: usize = $lanes;
                let p = fir.len();
                let n = chunk.len();
                let vecs = (n - head) / L;
                if vecs == 0 {
                    return 0;
                }
                let mut taps = [_mm256_setzero_si256(); 4];
                for (j, t) in taps.iter_mut().enumerate().take(p) {
                    *t = $set1(fir[j]);
                }
                let base = chunk.as_mut_ptr();
                for v in 0..vecs {
                    let i0 = n - L * (v + 1);
                    let mut acc = $mul(taps[0], _mm256_loadu_si256(base.add(i0) as *const __m256i));
                    for j in 1..p {
                        let x = _mm256_loadu_si256(base.add(i0 - j) as *const __m256i);
                        acc = $add(acc, $mul(taps[j], x));
                    }
                    _mm256_storeu_si256(base.add(i0) as *mut __m256i, acc);
                }
                vecs * L
            }
        };
    }

    /// Correction fold `dst[i] += list[i]·c` over the low vector prefix;
    /// returns elements processed (caller finishes the remainder).
    macro_rules! float_axpy {
        ($name:ident, $feat:literal, $elem:ty, $lanes:expr,
         $loadu:ident, $storeu:ident, $set1:ident, $fmadd:ident) => {
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $name(dst: &mut [$elem], list: &[$elem], c: $elem) -> usize {
                const L: usize = $lanes;
                let n = dst.len().min(list.len());
                let vecs = n / L;
                let cv = $set1(c);
                let d = dst.as_mut_ptr();
                let l = list.as_ptr();
                for v in 0..vecs {
                    let i = v * L;
                    let acc = $fmadd($loadu(l.add(i)), cv, $loadu(d.add(i)));
                    $storeu(d.add(i), acc);
                }
                vecs * L
            }
        };
    }

    /// Integer counterpart of [`float_axpy`].
    macro_rules! int_axpy {
        ($name:ident, $feat:literal, $elem:ty, $lanes:expr,
         $set1:ident, $add:ident, $mul:path) => {
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $name(dst: &mut [$elem], list: &[$elem], c: $elem) -> usize {
                const L: usize = $lanes;
                let n = dst.len().min(list.len());
                let vecs = n / L;
                let cv = $set1(c);
                let d = dst.as_mut_ptr();
                let l = list.as_ptr();
                for v in 0..vecs {
                    let i = v * L;
                    let x = _mm256_loadu_si256(l.add(i) as *const __m256i);
                    let acc = $add(_mm256_loadu_si256(d.add(i) as *const __m256i), $mul(x, cv));
                    _mm256_storeu_si256(d.add(i) as *mut __m256i, acc);
                }
                vecs * L
            }
        };
    }

    float_solve!(
        solve_f64_avx2,
        "avx2,fma",
        f64,
        4,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_set1_pd,
        _mm256_fmadd_pd,
        _mm256_setzero_pd,
        bcast_lane_pd
    );
    float_solve!(
        solve_f32_avx2,
        "avx2,fma",
        f32,
        8,
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        _mm256_set1_ps,
        _mm256_fmadd_ps,
        _mm256_setzero_ps,
        bcast_lane_ps
    );
    int_solve!(
        solve_i32_avx2,
        "avx2",
        i32,
        8,
        _mm256_set1_epi32,
        _mm256_add_epi32,
        _mm256_mullo_epi32,
        bcast_lane32
    );
    int_solve!(
        solve_i64_avx2,
        "avx2",
        i64,
        4,
        _mm256_set1_epi64x,
        _mm256_add_epi64,
        mul_epi64_avx2,
        bcast_lane64
    );
    int_solve!(
        solve_i64_avx512,
        "avx2,avx512dq,avx512vl",
        i64,
        4,
        _mm256_set1_epi64x,
        _mm256_add_epi64,
        mul_epi64_avx512,
        bcast_lane64
    );

    float_fir!(
        fir_steady_f64_avx2,
        "avx2,fma",
        f64,
        4,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_set1_pd,
        _mm256_mul_pd,
        _mm256_fmadd_pd,
        _mm256_setzero_pd
    );
    float_fir!(
        fir_steady_f32_avx2,
        "avx2,fma",
        f32,
        8,
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        _mm256_set1_ps,
        _mm256_mul_ps,
        _mm256_fmadd_ps,
        _mm256_setzero_ps
    );
    int_fir!(
        fir_steady_i32_avx2,
        "avx2",
        i32,
        8,
        _mm256_set1_epi32,
        _mm256_add_epi32,
        _mm256_mullo_epi32
    );
    int_fir!(
        fir_steady_i64_avx2,
        "avx2",
        i64,
        4,
        _mm256_set1_epi64x,
        _mm256_add_epi64,
        mul_epi64_avx2
    );
    int_fir!(
        fir_steady_i64_avx512,
        "avx2,avx512dq,avx512vl",
        i64,
        4,
        _mm256_set1_epi64x,
        _mm256_add_epi64,
        mul_epi64_avx512
    );

    float_axpy!(
        axpy_f64_avx2,
        "avx2,fma",
        f64,
        4,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_set1_pd,
        _mm256_fmadd_pd
    );
    float_axpy!(
        axpy_f32_avx2,
        "avx2,fma",
        f32,
        8,
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        _mm256_set1_ps,
        _mm256_fmadd_ps
    );
    int_axpy!(
        axpy_i32_avx2,
        "avx2",
        i32,
        8,
        _mm256_set1_epi32,
        _mm256_add_epi32,
        _mm256_mullo_epi32
    );
    int_axpy!(
        axpy_i64_avx2,
        "avx2",
        i64,
        4,
        _mm256_set1_epi64x,
        _mm256_add_epi64,
        mul_epi64_avx2
    );
    int_axpy!(
        axpy_i64_avx512,
        "avx2,avx512dq,avx512vl",
        i64,
        4,
        _mm256_set1_epi64x,
        _mm256_add_epi64,
        mul_epi64_avx512
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_support_is_the_four_builtins() {
        assert!(supported::<f32>() && supported::<f64>());
        assert!(supported::<i32>() && supported::<i64>());
        assert!(!supported::<crate::tropical::MaxPlus>());
        assert!(available_isas::<crate::tropical::MaxPlus>().is_empty());
    }

    #[test]
    fn portable_is_always_available() {
        assert!(Isa::Portable.available());
        assert_eq!(available_isas::<f64>()[0], Isa::Portable);
    }

    #[test]
    fn portable_kernel_matches_scalar_exactly() {
        let fb = [2i64, -1];
        let kernel = SimdKernel::try_new_with(&fb, Isa::Portable).unwrap();
        let input: Vec<i64> = (0..100).map(|i| (i % 7) - 3).collect();
        let mut got = input.clone();
        kernel.solve_in_place(&mut got);
        let mut expect = input;
        serial::recursive_in_place(&fb, &mut expect);
        assert_eq!(got, expect);
    }

    #[test]
    fn unsupported_isa_is_rejected_at_construction() {
        // MaxPlus has no explicit kernels on any ISA.
        use crate::tropical::MaxPlus;
        assert!(SimdKernel::try_new(&[MaxPlus::new(1.0)]).is_none());
        // Order above the blocked cap is rejected for supported types.
        assert!(SimdKernel::try_new(&[1.0f64; MAX_BLOCKED_ORDER + 1]).is_none());
    }
}
