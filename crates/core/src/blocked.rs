//! Register-blocked serial kernels: level 0 of the paper's hierarchy.
//!
//! The paper's central trick — correct a chunk by multiplying its
//! predecessor's `k` carries with precomputed n-nacci factors — applies one
//! level below where the chunked executors use it: at *register-block*
//! granularity. A [`BlockedKernel`] processes the pure-feedback recurrence
//! in fixed [`BLOCK`]-element blocks:
//!
//! 1. **Local solution** — inside a block, the solution that assumes zero
//!    incoming history is a *triangular FIR* over the block's inputs,
//!    `y[i] = Σ_{j ≤ i} h[j]·t[i-j]`, where `h` is the recurrence's
//!    impulse response ([`crate::nacci::impulse_response`]). Every output
//!    is an independent dot product — no loop-carried dependency, so the
//!    compiler can keep multiple multiply-add chains in flight and
//!    autovectorize.
//! 2. **Carry application** — the incoming `k` carries are folded in with
//!    a precomputed `BLOCK×k` factor table (a length-[`BLOCK`] prefix of
//!    the same [`CorrectionTable`] the chunked executors use):
//!    `y[i] += Σ_r F_r[i]·c_r`, again dependency-free across the block.
//!
//! The per-element loop-carried dependency of the scalar loop becomes a
//! once-per-block dependency (the `k` carries read from the previous
//! block's tail), mirroring how the paper's GPU kernels break the
//! dependency at warp granularity.
//!
//! The rewrite is an identity in any commutative semiring (superposition of
//! the linear recurrence), so it is **exact** for the wrapping integers.
//! For floats it reassociates additions, giving ULP-level differences —
//! well inside the paper's 1e-3 validation bound. Element types that want
//! the scalar reference path verbatim (e.g. the max-plus semiring in
//! [`crate::tropical`]) opt out via [`Element::BLOCKABLE`].
//!
//! [`SolveKernel`] is the dispatch layer the executors embed: it selects
//! the blocked kernel by order (`1..=`[`MAX_BLOCKED_ORDER`]) and element
//! type (floats, whose multiply-add chains are latency-bound), and falls
//! back to the scalar loops of [`crate::serial`] for high orders,
//! integers, and exotic elements. [`fir_in_place`] is the matching
//! map-stage kernel: a branch-free steady-state loop with unrolled
//! specializations for small tap counts.

use crate::element::Element;
use crate::kernel::{self, KernelKind, KernelTier};
use crate::nacci::{carries_of, impulse_response, CorrectionTable};
use crate::serial;
use crate::simd::{self, SimdKernel};

/// Elements per register block (`U` in the design notes).
///
/// Chosen so a block of `f64` spans a handful of SIMD registers: large
/// enough to amortize the once-per-block carry dependency, small enough
/// that the `O(BLOCK²/2)` local FIR stays cheap per element.
pub const BLOCK: usize = 16;

/// Highest recurrence order served by the blocked kernels.
///
/// Beyond order 4 the carry application and the factor table stop paying
/// for themselves and [`SolveKernel`] falls back to the scalar loop.
pub const MAX_BLOCKED_ORDER: usize = 4;

/// A register-blocked solver for one pure-feedback recurrence
/// `y[i] = t[i] + Σ b-j·y[i-j]` of order `1..=`[`MAX_BLOCKED_ORDER`].
///
/// Construction precomputes the truncated impulse response and the
/// intra-block carry factor table; [`BlockedKernel::solve_in_place`] then
/// does only multiply-adds.
///
/// # Examples
///
/// ```
/// use plr_core::blocked::BlockedKernel;
/// use plr_core::serial;
///
/// let fb = [2i64, -1];
/// let kernel = BlockedKernel::try_new(&fb).unwrap();
/// let input: Vec<i64> = (0..100).map(|i| (i % 7) - 3).collect();
/// let mut blocked = input.clone();
/// kernel.solve_in_place(&mut blocked);
/// let mut scalar = input;
/// serial::recursive_in_place(&fb, &mut scalar);
/// assert_eq!(blocked, scalar); // exact for integers
/// ```
#[derive(Debug, Clone)]
pub struct BlockedKernel<T> {
    feedback: Vec<T>,
    /// `h[0..BLOCK]` — impulse response of `(1 : b…)`; `h[0]` is one.
    impulse: [T; BLOCK],
    /// `factors[r][i]` — factor for carry `r` at block offset `i` (the
    /// length-[`BLOCK`] prefix of [`CorrectionTable::list`]).
    factors: Vec<[T; BLOCK]>,
}

impl<T: Element> BlockedKernel<T> {
    /// Builds the kernel, or `None` when the blocked form does not apply:
    /// order zero or above [`MAX_BLOCKED_ORDER`], or an element type that
    /// opted out via [`Element::BLOCKABLE`].
    pub fn try_new(feedback: &[T]) -> Option<Self> {
        let k = feedback.len();
        if !T::BLOCKABLE || k == 0 || k > MAX_BLOCKED_ORDER {
            return None;
        }
        let mut impulse = [T::zero(); BLOCK];
        impulse.copy_from_slice(&impulse_response(feedback, BLOCK));
        let table = CorrectionTable::generate(feedback, BLOCK);
        let factors = (0..k)
            .map(|r| {
                let mut f = [T::zero(); BLOCK];
                f.copy_from_slice(table.list(r));
                f
            })
            .collect();
        Some(BlockedKernel {
            feedback: feedback.to_vec(),
            impulse,
            factors,
        })
    }

    /// The recurrence order `k`.
    pub fn order(&self) -> usize {
        self.feedback.len()
    }

    /// The feedback vector this kernel solves.
    pub(crate) fn feedback(&self) -> &[T] {
        &self.feedback
    }

    /// The precomputed impulse-response prefix `h[0..BLOCK]`.
    pub(crate) fn impulse(&self) -> &[T; BLOCK] {
        &self.impulse
    }

    /// The precomputed carry-factor rows (`factors[r][i]`, `k` rows).
    pub(crate) fn factors(&self) -> &[[T; BLOCK]] {
        &self.factors
    }

    /// Solves `y[i] = t[i] + Σ b-j·y[i-j]` in place with zero history,
    /// matching [`serial::recursive_in_place`].
    pub fn solve_in_place(&self, data: &mut [T]) {
        self.solve_in_place_with_history(&[], data);
    }

    /// Solves in place continuing from explicit history (`history[0]` is
    /// the value just before `data[0]`), matching
    /// [`serial::recursive_in_place_with_history`].
    pub fn solve_in_place_with_history(&self, history: &[T], data: &mut [T]) {
        let k = self.feedback.len();
        let mut carries = [T::zero(); MAX_BLOCKED_ORDER];
        for (c, &h) in carries.iter_mut().zip(history.iter().take(k)) {
            *c = h;
        }
        let mut blocks = data.chunks_exact_mut(BLOCK);
        for block in blocks.by_ref() {
            let block: &mut [T; BLOCK] =
                block.try_into().expect("exact chunks have BLOCK elements");
            self.solve_block(block, &carries);
            for (r, c) in carries.iter_mut().enumerate().take(k) {
                *c = block[BLOCK - 1 - r];
            }
        }
        let tail = blocks.into_remainder();
        if !tail.is_empty() {
            serial::recursive_in_place_with_history(&self.feedback, &carries[..k], tail);
        }
    }

    /// One block: triangular-FIR local solution, then carry application.
    /// (Shared with the portable tier of [`crate::simd`].)
    #[inline]
    pub(crate) fn solve_block(&self, block: &mut [T; BLOCK], carries: &[T; MAX_BLOCKED_ORDER]) {
        let t = *block;
        // h[0] = 1: every input contributes itself; start from a copy and
        // add the j ≥ 1 impulse taps. Each j-pass is dependency-free.
        let mut acc = t;
        for j in 1..BLOCK {
            let hj = self.impulse[j];
            for i in 0..BLOCK - j {
                acc[i + j] = acc[i + j].add(hj.mul(t[i]));
            }
        }
        // Incoming carries, once per block — the only serial dependency.
        for (f, &c) in self.factors.iter().zip(carries) {
            for (a, &fi) in acc.iter_mut().zip(f) {
                *a = a.add(fi.mul(c));
            }
        }
        *block = acc;
    }
}

/// Elements per cancellation-poll slice of
/// [`SolveKernel::solve_in_place_sliced`]: a multiple of every kernel's
/// block size (so slicing never changes which elements share a block),
/// large enough that the per-slice poll and history hand-off are noise,
/// small enough that cancel-to-return latency stays in the tens of
/// microseconds even mid-kernel.
pub const SOLVE_SLICE: usize = 8192;

/// Outcome of a [`SolveKernel::solve_in_place_sliced`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlicedSolve {
    /// `false` when the poll callback stopped the solve early (the data
    /// is left with a solved prefix and untouched remainder).
    pub completed: bool,
    /// Slices processed (at most `⌈len / SOLVE_SLICE⌉`).
    pub slices: u64,
}

/// The solve-kernel dispatch the executors embed: explicit SIMD where
/// the CPU and element type support it, register-blocked where only the
/// blocked form applies, scalar reference loop everywhere else. The
/// effective [`KernelTier`] (the `PLR_KERNEL` environment variable or
/// its programmatic override — see [`crate::kernel`]) can force a tier.
///
/// # Examples
///
/// ```
/// use plr_core::blocked::SolveKernel;
/// use plr_core::kernel::{KernelKind, KernelTier};
///
/// let fb = [1.6f64, -0.64];
/// // Auto dispatch never leaves low-order floats on the scalar loop.
/// assert!(!SolveKernel::select_with_tier(&fb, KernelTier::Auto).is_scalar());
/// // Order > 4 always falls back to the scalar loop.
/// assert!(SolveKernel::select_with_tier(&[0.1f64; 5], KernelTier::Auto).is_scalar());
/// // Forced tiers pin the choice regardless of the CPU.
/// let forced = SolveKernel::select_with_tier(&fb, KernelTier::Blocked);
/// assert_eq!(forced.kind(), KernelKind::Blocked);
/// ```
#[derive(Debug, Clone)]
pub enum SolveKernel<T> {
    /// Explicit SIMD kernel (orders `1..=`[`MAX_BLOCKED_ORDER`], builtin
    /// scalar types, dispatched on the detected ISA).
    Simd(SimdKernel<T>),
    /// Register-blocked kernel (orders `1..=`[`MAX_BLOCKED_ORDER`],
    /// blockable element types).
    Blocked(BlockedKernel<T>),
    /// The scalar loops of [`crate::serial`] over this feedback vector
    /// (high orders, order zero, and elements with
    /// [`Element::BLOCKABLE`]` == false`).
    Scalar(Vec<T>),
}

impl<T: Element> SolveKernel<T> {
    /// Picks the kernel for a feedback vector under the process-wide
    /// [`kernel::tier`]. With the default [`KernelTier::Auto`]:
    ///
    /// * orders `1..=`[`MAX_BLOCKED_ORDER`] of the four builtin scalar
    ///   types get the explicit SIMD kernel when a hardware vector ISA
    ///   is detected (`i64` only from AVX-512 up: `vpmullq` exists
    ///   there, while the AVX2 half-width multiply emulation measured
    ///   below the scalar chain — see [`crate::simd::best_isa`]);
    /// * floats *and* integers fall back to the autovectorizable blocked
    ///   kernel otherwise — the historical ~25% integer blocking
    ///   regression is gone now that the blocked tables feed the
    ///   transposed-convolution form, and blocked i64 measures at or
    ///   above the scalar chain even on a plain SSE2 build;
    /// * high orders, order zero, and exotic elements keep the scalar
    ///   reference loop.
    pub fn select(feedback: &[T]) -> Self {
        Self::select_with_tier(feedback, kernel::tier())
    }

    /// [`SolveKernel::select`] with an explicit tier (differential tests
    /// and benches). Forced tiers degrade gracefully: `simd` falls back
    /// to blocked-then-scalar where no explicit kernel exists, `blocked`
    /// to scalar.
    pub fn select_with_tier(feedback: &[T], tier: KernelTier) -> Self {
        let blocked_or_scalar = |feedback: &[T]| match BlockedKernel::try_new(feedback) {
            Some(k) => SolveKernel::Blocked(k),
            None => SolveKernel::Scalar(feedback.to_vec()),
        };
        match tier {
            KernelTier::Scalar => SolveKernel::Scalar(feedback.to_vec()),
            KernelTier::Blocked => blocked_or_scalar(feedback),
            KernelTier::Simd => match SimdKernel::try_new(feedback) {
                Some(k) => SolveKernel::Simd(k),
                None => blocked_or_scalar(feedback),
            },
            KernelTier::Auto => {
                if let Some(k) = SimdKernel::preferred(feedback) {
                    return SolveKernel::Simd(k);
                }
                match BlockedKernel::try_new(feedback) {
                    Some(kernel) => SolveKernel::Blocked(kernel),
                    None => SolveKernel::Scalar(feedback.to_vec()),
                }
            }
        }
    }

    /// `true` when the register-blocked kernel was selected.
    pub fn is_blocked(&self) -> bool {
        matches!(self, SolveKernel::Blocked(_))
    }

    /// `true` when the scalar reference loop was selected.
    pub fn is_scalar(&self) -> bool {
        matches!(self, SolveKernel::Scalar(_))
    }

    /// Which kernel this dispatch runs, as reported in run statistics.
    pub fn kind(&self) -> KernelKind {
        match self {
            SolveKernel::Simd(k) => match k.isa() {
                simd::Isa::Portable => KernelKind::SimdPortable,
                simd::Isa::Avx2 => KernelKind::SimdAvx2,
                simd::Isa::Avx512 => KernelKind::SimdAvx512,
            },
            SolveKernel::Blocked(_) => KernelKind::Blocked,
            SolveKernel::Scalar(_) => KernelKind::Scalar,
        }
    }

    /// The feedback vector this kernel solves.
    pub fn feedback(&self) -> &[T] {
        match self {
            SolveKernel::Simd(k) => k.feedback(),
            SolveKernel::Blocked(k) => &k.feedback,
            SolveKernel::Scalar(fb) => fb,
        }
    }

    /// Solves the pure-feedback recurrence in place with zero history.
    pub fn solve_in_place(&self, data: &mut [T]) {
        match self {
            SolveKernel::Simd(k) => k.solve_in_place(data),
            SolveKernel::Blocked(k) => k.solve_in_place(data),
            SolveKernel::Scalar(fb) => serial::recursive_in_place(fb, data),
        }
    }

    /// Solves in place continuing from explicit history (`history[0]` is
    /// the value just before `data[0]`; missing entries are zero).
    pub fn solve_in_place_with_history(&self, history: &[T], data: &mut [T]) {
        match self {
            SolveKernel::Simd(k) => k.solve_in_place_with_history(history, data),
            SolveKernel::Blocked(k) => k.solve_in_place_with_history(history, data),
            SolveKernel::Scalar(fb) => serial::recursive_in_place_with_history(fb, history, data),
        }
    }

    /// Like [`SolveKernel::solve_in_place`], but in [`SOLVE_SLICE`]-sized
    /// slices with `keep_going` polled before each slice after the first,
    /// so a cancellation (or deadline) signal reaches a long single-chunk
    /// solve mid-kernel instead of after it.
    ///
    /// Slicing is exact: [`SOLVE_SLICE`] is a multiple of every kernel's
    /// block size and the inter-slice history hand-off reads the same
    /// values the unsliced kernel carries in registers, so the output is
    /// bit-identical to the unsliced solve for every tier.
    ///
    /// On an early stop the slices processed so far hold their final
    /// values and the rest of `data` is untouched.
    pub fn solve_in_place_sliced(
        &self,
        data: &mut [T],
        keep_going: &mut dyn FnMut() -> bool,
    ) -> SlicedSolve {
        let k = self.feedback().len();
        let n = data.len();
        // Degenerate cases run unsliced: short data, no feedback, or an
        // order so high a slice could not even hold the history hand-off.
        if n <= SOLVE_SLICE || k == 0 || k >= SOLVE_SLICE {
            self.solve_in_place(data);
            return SlicedSolve {
                completed: true,
                slices: 1,
            };
        }
        let mut slices = 0u64;
        let mut start = 0usize;
        while start < n {
            if start > 0 && !keep_going() {
                return SlicedSolve {
                    completed: false,
                    slices,
                };
            }
            let end = (start + SOLVE_SLICE).min(n);
            let (prev, rest) = data.split_at_mut(start);
            let history = carries_of(prev, k);
            self.solve_in_place_with_history(&history, &mut rest[..end - start]);
            slices += 1;
            start = end;
        }
        SlicedSolve {
            completed: true,
            slices,
        }
    }
}

/// Applies the FIR map `out[i] = Σ_j fir[j]·x[i-j]` to `chunk` in place,
/// walking right-to-left so every read of `chunk` sees original input.
///
/// `prev` holds the original inputs immediately left of the chunk, most
/// recent last (`prev[prev.len() - 1]` is `x[start - 1]`); `start` is the
/// chunk's global offset, used to zero terms that reach before the data.
///
/// The steady state (`i ≥ p - 1`, all taps inside the chunk) runs
/// branch-free, with fully unrolled specializations for 1–4 taps; only
/// the `p - 1` leading elements take the boundary-checking prologue.
pub fn fir_in_place<T: Element>(fir: &[T], prev: &[T], start: usize, chunk: &mut [T]) {
    let p = fir.len();
    if p == 0 {
        // An empty tap list maps everything to zero (no terms to sum).
        for v in chunk.iter_mut() {
            *v = T::zero();
        }
        return;
    }
    let head = (p - 1).min(chunk.len());
    // Steady state first: it reads only chunk[i - j] for j < p ≤ i + 1,
    // all untouched original inputs at this point in the backward walk.
    // The explicit-SIMD kernel takes the top of the steady region in
    // descending vector windows (same read-before-overwrite argument at
    // vector granularity); the scalar loop finishes what remains.
    let lo = chunk.len() - simd::fir_steady_in_place(fir, chunk, head);
    match p {
        1 => fir_steady_rev::<T, 1>(fir, &mut chunk[..lo], head),
        2 => fir_steady_rev::<T, 2>(fir, &mut chunk[..lo], head),
        3 => fir_steady_rev::<T, 3>(fir, &mut chunk[..lo], head),
        4 => fir_steady_rev::<T, 4>(fir, &mut chunk[..lo], head),
        _ => {
            for i in (head..lo).rev() {
                let mut acc = fir[0].mul(chunk[i]);
                for (j, &a) in fir.iter().enumerate().skip(1) {
                    acc = acc.add(a.mul(chunk[i - j]));
                }
                chunk[i] = acc;
            }
        }
    }
    // Prologue: the leading elements whose taps cross the chunk boundary
    // (into `prev`) or reach before the start of the data entirely.
    for i in (0..head).rev() {
        let mut acc = T::zero();
        for (j, &a) in fir.iter().enumerate() {
            if j > start + i {
                break;
            }
            let x = if j <= i {
                chunk[i - j]
            } else {
                let back = j - i; // reaches `back` elements before the chunk
                if back <= prev.len() {
                    prev[prev.len() - back]
                } else {
                    T::zero()
                }
            };
            acc = acc.add(a.mul(x));
        }
        chunk[i] = acc;
    }
}

/// The branch-free steady state of [`fir_in_place`] with a compile-time
/// tap count, so the inner loop fully unrolls.
fn fir_steady_rev<T: Element, const P: usize>(fir: &[T], chunk: &mut [T], head: usize) {
    let taps: [T; P] = fir.try_into().expect("dispatched on fir.len()");
    for i in (head..chunk.len()).rev() {
        let mut acc = taps[0].mul(chunk[i]);
        for j in 1..P {
            acc = acc.add(taps[j].mul(chunk[i - j]));
        }
        chunk[i] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tropical::MaxPlus;

    fn solve_ref<T: Element>(fb: &[T], history: &[T], input: &[T]) -> Vec<T> {
        let mut data = input.to_vec();
        serial::recursive_in_place_with_history(fb, history, &mut data);
        data
    }

    #[test]
    fn blocked_matches_scalar_exactly_for_ints() {
        let input: Vec<i64> = (0..200).map(|i| ((i * 37) % 23) - 11).collect();
        for fb in [
            vec![1i64],
            vec![2, -1],
            vec![1, 1],
            vec![3, -3, 1],
            vec![1, 0, 0, 1],
        ] {
            let kernel = BlockedKernel::try_new(&fb).unwrap();
            for n in [0, 1, BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK + 7, 200] {
                let mut got = input[..n].to_vec();
                kernel.solve_in_place(&mut got);
                assert_eq!(got, solve_ref(&fb, &[], &input[..n]), "{fb:?} n={n}");
            }
        }
    }

    #[test]
    fn blocked_history_matches_scalar() {
        let fb = [2i64, -1];
        let kernel = BlockedKernel::try_new(&fb).unwrap();
        let input: Vec<i64> = (0..100).map(|i| (i % 13) - 6).collect();
        for history in [vec![], vec![7], vec![7, -3]] {
            let mut got = input.clone();
            kernel.solve_in_place_with_history(&history, &mut got);
            assert_eq!(got, solve_ref(&fb, &history, &input), "history {history:?}");
        }
    }

    #[test]
    fn blocked_floats_stay_within_tolerance() {
        let fb = [1.6f64, -0.64];
        let kernel = BlockedKernel::try_new(&fb).unwrap();
        let input: Vec<f64> = (0..500)
            .map(|i| ((i * 7) % 23) as f64 * 0.3 - 3.0)
            .collect();
        let mut got = input.clone();
        kernel.solve_in_place(&mut got);
        let expect = solve_ref(&fb, &[], &input);
        for (a, b) in expect.iter().zip(&got) {
            assert!(a.approx_eq(*b, 1e-9), "{a} vs {b}");
        }
    }

    #[test]
    fn dispatch_by_order_and_element() {
        // Tier pinned to Auto: this test is about the *default* policy
        // and must hold even when CI forces `PLR_KERNEL` for the suite.
        let auto = |fb: &[f64]| SolveKernel::select_with_tier(fb, KernelTier::Auto);
        // Floats in range never degrade to the scalar loop: SIMD where a
        // vector ISA is detected, blocked otherwise.
        assert!(!SolveKernel::select_with_tier(&[0.8f32], KernelTier::Auto).is_scalar());
        assert!(!auto(&[1.6f64, -0.64, 0.1, -0.2]).is_scalar());
        // Order above the cap and order zero fall back.
        assert!(auto(&[0.1f64; MAX_BLOCKED_ORDER + 1]).is_scalar());
        assert!(auto(&[]).is_scalar());
        // Integers ride the blocked tables too now: with a vector ISA
        // they go SIMD (i64 only from AVX-512, where `vpmullq` exists),
        // otherwise the blocked form — at or above the scalar chain
        // since the transposed-convolution rework.
        assert!(BlockedKernel::try_new(&[1i32, 2, 3, 4]).is_some());
        let int_kernel = SolveKernel::select_with_tier(&[1i32, 2, 3, 4], KernelTier::Auto);
        assert!(!int_kernel.is_scalar());
        assert!(matches!(
            int_kernel.kind(),
            KernelKind::Blocked | KernelKind::SimdAvx2 | KernelKind::SimdAvx512
        ));
        let i64_kernel = SolveKernel::select_with_tier(&[2i64, -1], KernelTier::Auto);
        assert!(!i64_kernel.is_scalar());
        assert!(matches!(
            i64_kernel.kind(),
            KernelKind::Blocked | KernelKind::SimdAvx512
        ));
        // Exotic elements (max-plus semiring) opt out of blocking
        // entirely via `Element::BLOCKABLE` — on every tier.
        assert!(BlockedKernel::try_new(&[MaxPlus::new(1.0)]).is_none());
        for tier in [
            KernelTier::Auto,
            KernelTier::Scalar,
            KernelTier::Blocked,
            KernelTier::Simd,
        ] {
            assert!(SolveKernel::select_with_tier(&[MaxPlus::new(1.0)], tier).is_scalar());
        }
    }

    #[test]
    fn forced_tiers_pin_the_kernel() {
        let fb = [1.6f64, -0.64];
        assert_eq!(
            SolveKernel::select_with_tier(&fb, KernelTier::Scalar).kind(),
            KernelKind::Scalar
        );
        assert_eq!(
            SolveKernel::select_with_tier(&fb, KernelTier::Blocked).kind(),
            KernelKind::Blocked
        );
        // Forced simd always lands on *some* simd tier for builtin
        // floats (portable when no vector ISA is detected).
        assert!(matches!(
            SolveKernel::select_with_tier(&fb, KernelTier::Simd).kind(),
            KernelKind::SimdPortable | KernelKind::SimdAvx2 | KernelKind::SimdAvx512
        ));
        // ...and degrades to blocked for floats with no explicit kernel
        // support only via order/type gates (order > 4 → scalar).
        assert_eq!(
            SolveKernel::select_with_tier(&[0.1f64; 5], KernelTier::Simd).kind(),
            KernelKind::Scalar
        );
    }

    #[test]
    fn sliced_solve_is_bit_identical_and_polls() {
        for fb in [vec![1i64], vec![2, -1], vec![3, -3, 1]] {
            let kernel = SolveKernel::select(&fb);
            let n = 3 * SOLVE_SLICE + 421;
            let input: Vec<i64> = (0..n as i64).map(|i| (i * 37 % 23) - 11).collect();
            let mut whole = input.clone();
            kernel.solve_in_place(&mut whole);
            let mut sliced = input.clone();
            let mut polls = 0u64;
            let out = kernel.solve_in_place_sliced(&mut sliced, &mut || {
                polls += 1;
                true
            });
            assert!(out.completed);
            assert_eq!(out.slices, 4, "⌈n / SOLVE_SLICE⌉ slices");
            assert_eq!(polls, 3, "polled before each slice after the first");
            assert_eq!(sliced, whole, "{fb:?}");
        }
    }

    #[test]
    fn sliced_solve_floats_match_unsliced_exactly() {
        // Slices are block-multiples and the history hand-off re-reads
        // the same stored values, so even floats are bit-identical.
        let kernel = SolveKernel::select(&[1.6f64, -0.64]);
        let n = 2 * SOLVE_SLICE + 777;
        let input: Vec<f64> = (0..n).map(|i| ((i * 7) % 23) as f64 * 0.3 - 3.0).collect();
        let mut whole = input.clone();
        kernel.solve_in_place(&mut whole);
        let mut sliced = input.clone();
        let out = kernel.solve_in_place_sliced(&mut sliced, &mut || true);
        assert!(out.completed && out.slices == 3);
        assert_eq!(sliced, whole);
    }

    #[test]
    fn sliced_solve_stops_at_the_poll() {
        let kernel = SolveKernel::select(&[2i64, -1]);
        let n = 4 * SOLVE_SLICE;
        let input: Vec<i64> = (0..n as i64).map(|i| i % 5 - 2).collect();
        let mut data = input.clone();
        let mut budget = 2; // allow two polls, fail the third
        let out = kernel.solve_in_place_sliced(&mut data, &mut || {
            budget -= 1;
            budget >= 0
        });
        assert!(!out.completed);
        assert_eq!(out.slices, 3, "three slices done before the failed poll");
        // The solved prefix is final, the remainder untouched input.
        let mut expect = input.clone();
        kernel.solve_in_place(&mut expect);
        assert_eq!(data[..3 * SOLVE_SLICE], expect[..3 * SOLVE_SLICE]);
        assert_eq!(data[3 * SOLVE_SLICE..], input[3 * SOLVE_SLICE..]);
    }

    #[test]
    fn sliced_solve_short_data_skips_polling() {
        let kernel = SolveKernel::select(&[1i64, 1]);
        let mut data: Vec<i64> = (0..100).map(|i| i % 3).collect();
        let out = kernel.solve_in_place_sliced(&mut data, &mut || panic!("must not poll"));
        assert!(out.completed);
        assert_eq!(out.slices, 1);
    }

    #[test]
    fn scalar_fallback_solves_high_orders() {
        let fb = vec![1i64, 0, 0, 0, 0, 1]; // order 6
        let kernel = SolveKernel::select(&fb);
        let input: Vec<i64> = (0..80).map(|i| (i % 5) - 2).collect();
        let mut got = input.clone();
        kernel.solve_in_place(&mut got);
        assert_eq!(got, solve_ref(&fb, &[], &input));
        assert_eq!(kernel.feedback(), fb.as_slice());
    }

    #[test]
    fn fir_in_place_specializations_match_reference() {
        let input: Vec<i64> = (0..120).map(|i| (i % 11) - 5).collect();
        for p in 1..=6 {
            let fir: Vec<i64> = (0..p).map(|j| (j as i64) * 2 - 3).collect();
            let expect = serial::fir_map(&fir, &input);
            for m in [1usize, 7, BLOCK, 50, 120, 300] {
                let mut data = input.clone();
                let num_chunks = data.len().div_ceil(m);
                let stash: Vec<Vec<i64>> = (1..num_chunks)
                    .map(|c| data[(c * m).saturating_sub(p - 1)..c * m].to_vec())
                    .collect();
                for c in (0..num_chunks).rev() {
                    let start = c * m;
                    let end = (start + m).min(input.len());
                    let prev: &[i64] = if c == 0 { &[] } else { &stash[c - 1] };
                    fir_in_place(&fir, prev, start, &mut data[start..end]);
                }
                assert_eq!(data, expect, "p={p} m={m}");
            }
        }
    }

    #[test]
    fn fir_in_place_empty_taps_zeroes() {
        let mut data = vec![3i32, -4, 5];
        fir_in_place(&[], &[], 0, &mut data);
        assert_eq!(data, vec![0, 0, 0]);
    }
}
