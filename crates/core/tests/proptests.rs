//! Property-based tests for the core recurrence algorithms.
//!
//! The central invariant: every parallel-friendly formulation (Phase 1
//! doubling, decoupled look-back Phase 2, any chunk size) must agree with
//! the serial reference exactly for integers and within the paper's 1e-3
//! tolerance for floats — for *arbitrary* signatures, not just the eleven
//! in Table 1.

use plr_core::engine::{CarryPropagation, Engine, EngineConfig, LocalSolve};
use plr_core::nacci::{carries_of, CorrectionTable};
use plr_core::segmented::{self, Segments};
use plr_core::signature::Signature;
use plr_core::{phase1, phase2, serial, validate};
use proptest::prelude::*;

/// An arbitrary valid integer signature: 1..=4 feed-forward and feedback
/// coefficients in a small range, with the required nonzero trailing
/// coefficients.
fn int_signature() -> impl Strategy<Value = Signature<i64>> {
    let coeff = -3i64..=3;
    let nonzero = prop_oneof![-3i64..=-1, 1i64..=3];
    (
        proptest::collection::vec(coeff.clone(), 0..3),
        nonzero.clone(),
        proptest::collection::vec(coeff, 0..3),
        nonzero,
    )
        .prop_map(|(mut ff, ff_last, mut fb, fb_last)| {
            ff.push(ff_last);
            fb.push(fb_last);
            Signature::new(ff, fb).expect("nonzero trailing coefficients")
        })
}

/// A stable float signature: pure feedback with spectral radius < 1 by
/// construction (product of single poles in (-0.9, 0.9)).
fn stable_float_signature() -> impl Strategy<Value = Signature<f64>> {
    proptest::collection::vec(-0.9f64..0.9, 1..4).prop_filter_map("nonzero poles", |poles| {
        if poles.iter().any(|p| p.abs() < 1e-3) {
            return None;
        }
        // Characteristic polynomial Π (z - p) expanded; feedback is the
        // negated non-leading coefficients.
        let mut c = vec![1.0f64];
        for &p in &poles {
            let mut next = vec![0.0; c.len() + 1];
            for (i, &ci) in c.iter().enumerate() {
                next[i] += ci * -p;
                next[i + 1] += ci;
            }
            c = next;
        }
        c.reverse(); // highest degree first
        let feedback: Vec<f64> = c[1..].iter().map(|&v| -v).collect();
        Signature::new(vec![1.0], feedback).ok()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_matches_serial_for_arbitrary_int_signatures(
        sig in int_signature(),
        input in proptest::collection::vec(-50i64..50, 0..300),
        log_chunk in 2usize..7, // >= 4 >= any generated order
    ) {
        let expect = serial::run(&sig, &input);
        for local in [LocalSolve::HierarchicalDoubling, LocalSolve::Serial] {
            for carry in [CarryPropagation::Sequential, CarryPropagation::Decoupled] {
                let config = EngineConfig {
                    chunk_size: 1 << log_chunk,
                    local_solve: local,
                    carry_propagation: carry,
                    flush_denormals: true,
                };
                let engine = Engine::with_config(sig.clone(), config).unwrap();
                let got = engine.run(&input).unwrap();
                prop_assert_eq!(&got, &expect, "{} {:?} {:?}", &sig, local, carry);
            }
        }
    }

    #[test]
    fn engine_matches_serial_for_stable_float_signatures(
        sig in stable_float_signature(),
        input in proptest::collection::vec(-4.0f64..4.0, 0..300),
        log_chunk in 2usize..7,
    ) {
        let expect = serial::run(&sig, &input);
        let engine = Engine::with_config(
            sig.clone(),
            EngineConfig { chunk_size: 1 << log_chunk, ..Default::default() },
        ).unwrap();
        let got = engine.run(&input).unwrap();
        prop_assert!(validate::validate(&expect, &got, 1e-3).is_ok());
    }

    #[test]
    fn chunk_merge_equals_concatenated_solve(
        fb in proptest::collection::vec(-3i64..=3, 1..4),
        left in proptest::collection::vec(-20i64..20, 1..40),
        right in proptest::collection::vec(-20i64..20, 1..40),
    ) {
        prop_assume!(fb.last() != Some(&0));
        let k = fb.len();
        let whole: Vec<i64> = left.iter().chain(right.iter()).copied().collect();
        let mut expect = whole.clone();
        serial::recursive_in_place(&fb, &mut expect);

        let mut l = left.clone();
        let mut r = right.clone();
        serial::recursive_in_place(&fb, &mut l);
        serial::recursive_in_place(&fb, &mut r);
        let table = CorrectionTable::generate(&fb, right.len());
        // Carries beyond the left chunk's length are zero in the
        // local-solution invariant.
        let carries = carries_of(&l, k);
        table.correct_chunk(&mut r, &carries);

        prop_assert_eq!(&expect[..left.len()], l.as_slice());
        prop_assert_eq!(&expect[left.len()..], r.as_slice());
    }

    #[test]
    fn phase1_produces_local_solutions(
        fb in proptest::collection::vec(-2i64..=2, 1..4),
        input in proptest::collection::vec(-10i64..10, 0..200),
        log_chunk in 0usize..6,
    ) {
        prop_assume!(fb.last() != Some(&0));
        let m = 1usize << log_chunk;
        let table = CorrectionTable::generate(&fb, m);
        let mut data = input.clone();
        phase1::run(&table, &mut data, m);
        let mut expect = input.clone();
        for c in expect.chunks_mut(m) {
            serial::recursive_in_place(&fb, c);
        }
        prop_assert_eq!(data, expect);
    }

    #[test]
    fn decoupled_and_sequential_propagation_agree(
        fb in proptest::collection::vec(-3i64..=3, 1..4),
        input in proptest::collection::vec(-20i64..20, 1..250),
        m in 4usize..33, // >= any generated order, as decoupled requires
    ) {
        prop_assume!(fb.last() != Some(&0));
        let table = CorrectionTable::generate(&fb, m);
        let mut a = input.clone();
        for c in a.chunks_mut(m) {
            serial::recursive_in_place(&fb, c);
        }
        let mut b = a.clone();
        phase2::propagate_sequential(&table, &mut a, m);
        phase2::propagate_decoupled(&table, &mut b, m);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn signature_display_parse_round_trip(sig in int_signature()) {
        let text = sig.to_string();
        let parsed: Signature<i64> = text.parse().unwrap();
        prop_assert_eq!(parsed, sig);
    }

    #[test]
    fn fir_map_is_linear(
        ff in proptest::collection::vec(-3i64..=3, 1..5),
        x in proptest::collection::vec(-20i64..20, 0..100),
        y in proptest::collection::vec(-20i64..20, 0..100),
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let sum: Vec<i64> = x.iter().zip(y).map(|(a, b)| a + b).collect();
        let fx = serial::fir_map(&ff, x);
        let fy = serial::fir_map(&ff, y);
        let fsum = serial::fir_map(&ff, &sum);
        for i in 0..n {
            prop_assert_eq!(fsum[i], fx[i] + fy[i]);
        }
    }

    #[test]
    fn parsing_arbitrary_text_never_panics(text in "\\PC*") {
        // Errors are fine; panics are not.
        let _ = text.parse::<Signature<i64>>();
        let _ = text.parse::<Signature<f64>>();
    }

    #[test]
    fn parsing_coefficient_shaped_noise_never_panics(
        text in "[-0-9.,: ()]{0,40}",
    ) {
        let _ = text.parse::<Signature<i32>>();
        let _ = text.parse::<Signature<f32>>();
    }

    #[test]
    fn segmented_chunked_matches_segmented_serial(
        fb in proptest::collection::vec(-2i64..=2, 1..4),
        input in proptest::collection::vec(-10i64..10, 1..300),
        raw_starts in proptest::collection::vec(0usize..300, 0..8),
        chunk_pow in 2usize..6,
    ) {
        prop_assume!(fb.last() != Some(&0));
        let sig = Signature::new(vec![1i64], fb).unwrap();
        let mut starts: Vec<usize> =
            raw_starts.into_iter().filter(|&s| s < input.len()).collect();
        starts.sort_unstable();
        starts.dedup();
        let segments = Segments::from_starts(starts).unwrap();
        let expect = segmented::run_serial(&sig, &segments, &input);
        let got = segmented::run_chunked(&sig, &segments, &input, 1 << chunk_pow).unwrap();
        prop_assert_eq!(got, expect, "{} {:?}", &sig, segments.starts());
    }

    #[test]
    fn streaming_any_blocking_equals_whole_run(
        sig in int_signature(),
        input in proptest::collection::vec(-30i64..30, 0..300),
        blocks in proptest::collection::vec(1usize..40, 1..10),
    ) {
        let expect = serial::run(&sig, &input);
        let mut state = plr_core::stream::StreamState::new(sig.clone());
        let mut got = Vec::new();
        let mut off = 0;
        let mut i = 0;
        while off < input.len() {
            let len = blocks[i % blocks.len()].min(input.len() - off);
            got.extend(state.process(&input[off..off + len]));
            off += len;
            i += 1;
        }
        prop_assert_eq!(got, expect, "{} blocks {:?}", &sig, blocks);
    }

    #[test]
    fn element_widths_agree_on_small_values(
        sig in int_signature(),
        input in proptest::collection::vec(-3i64..3, 0..60),
    ) {
        // With tiny coefficients and short inputs nothing overflows i32,
        // so all four element types must agree exactly (floats are exact
        // on small integers).
        // Guard with f64 (which saturates rather than wraps): only compare
        // widths on cases whose true values stay far from every integer
        // boundary. Exponential-growth cases are skipped, not mis-tested.
        let sigf: Signature<f64> = sig.cast();
        let xf: Vec<f64> = input.iter().map(|&v| v as f64).collect();
        let yf = serial::run(&sigf, &xf);
        if yf.iter().all(|v| v.abs() < (1u64 << 30) as f64) {
            let as32: Vec<i32> = input.iter().map(|&v| v as i32).collect();
            let sig32: Signature<i32> = sig.cast();
            let y64 = serial::run(&sig, &input);
            let y32 = serial::run(&sig32, &as32);
            for ((a, b), f) in y64.iter().zip(&y32).zip(&yf) {
                prop_assert_eq!(*a, *b as i64);
                prop_assert!((*a as f64 - f).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn lookback_depth_is_immaterial(
        fb in proptest::collection::vec(-2i64..=2, 1..3),
        input in proptest::collection::vec(-10i64..10, 64..128),
    ) {
        prop_assume!(fb.last() != Some(&0));
        let m = 8;
        let k = fb.len();
        let table = CorrectionTable::generate(&fb, m);

        let mut local = input.clone();
        for c in local.chunks_mut(m) {
            serial::recursive_in_place(&fb, c);
        }
        let locals: Vec<Vec<i64>> = local.chunks(m).map(|c| carries_of(c, k)).collect();

        let mut global = local.clone();
        phase2::propagate_sequential(&table, &mut global, m);
        let globals: Vec<Vec<i64>> = global.chunks(m).map(|c| carries_of(c, k)).collect();

        let num_full = input.len() / m; // operate on full chunks only
        // For every chunk c and every look-back depth d, deriving carries
        // from globals[c-d] + locals[c-d+1..=c] matches globals[c].
        for c in 1..num_full {
            for d in 1..=c {
                let lens = vec![m; d];
                let derived = phase2::lookback_carries(
                    &table,
                    &globals[c - d],
                    &locals[c - d + 1..=c],
                    &lens,
                );
                prop_assert_eq!(&derived, &globals[c], "chunk {} depth {}", c, d);
            }
        }
    }
}
