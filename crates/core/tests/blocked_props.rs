//! Property tests for the register-blocked serial kernels.
//!
//! The invariant: [`SolveKernel`] — whichever kernel it dispatches to —
//! agrees with the scalar loops of [`plr_core::serial`] for arbitrary
//! feedback vectors (orders 1–8, so the high-order fallback is exercised
//! alongside the blocked path), arbitrary histories, and lengths that
//! straddle every register-block boundary: `BLOCK - 1`, `BLOCK`,
//! `BLOCK + 1`, and non-multiples. Exactly for the wrapping integers;
//! within reassociation tolerance for floats.

use plr_core::blocked::{BlockedKernel, SolveKernel, BLOCK, MAX_BLOCKED_ORDER};
use plr_core::serial;
use plr_core::KernelTier;
use proptest::prelude::*;

/// Lengths exercising every block-boundary case around a random base:
/// one element short of a block edge, exactly on it, one past it, plus
/// the (typically non-multiple) base itself and the degenerate sizes.
fn boundary_lengths(base: usize) -> [usize; 7] {
    let edge = (base / BLOCK + 1) * BLOCK;
    [0, 1, BLOCK - 1, BLOCK, BLOCK + 1, edge + 1, base]
}

/// Integer feedback of order 1..=8 (trailing coefficient nonzero).
fn int_feedback() -> impl Strategy<Value = Vec<i64>> {
    let nonzero = prop_oneof![-2i64..=-1, 1i64..=2];
    (proptest::collection::vec(-2i64..=2, 0..8), nonzero).prop_map(|(mut fb, last)| {
        fb.push(last);
        fb
    })
}

/// Stable float feedback of order 1..=8: the characteristic polynomial is
/// a product of poles in (-0.8, 0.8), so solutions never blow up and the
/// float comparison measures reassociation error, not overflow.
fn stable_float_feedback() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-0.8f64..0.8, 1..9).prop_filter_map("nonzero poles", |poles| {
        if poles.iter().any(|p| p.abs() < 1e-2) {
            return None;
        }
        let mut c = vec![1.0f64];
        for &p in &poles {
            let mut next = vec![0.0; c.len() + 1];
            for (i, &ci) in c.iter().enumerate() {
                next[i] += ci * -p;
                next[i + 1] += ci;
            }
            c = next;
        }
        c.reverse(); // highest degree first
        Some(c[1..].iter().map(|&v| -v).collect())
    })
}

fn scalar_ref<T: plr_core::element::Element>(fb: &[T], history: &[T], input: &[T]) -> Vec<T> {
    let mut out = input.to_vec();
    serial::recursive_in_place_with_history(fb, history, &mut out);
    out
}

/// Relative-to-the-run tolerance: reassociating a block's additions moves
/// each output by a few ULP of the largest value in play.
fn assert_close(expect: &[f64], got: &[f64], ulps: f64, ctx: &str) -> Result<(), TestCaseError> {
    let scale = expect.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    for (i, (a, b)) in expect.iter().zip(got).enumerate() {
        prop_assert!(
            (a - b).abs() <= ulps * f64::EPSILON * scale,
            "{ctx}: index {i}: {a} vs {b} (scale {scale})"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dispatched_kernel_matches_scalar_exactly_for_i64(
        fb in int_feedback(),
        input in proptest::collection::vec(-9i64..9, 0..(6 * BLOCK)),
        history in proptest::collection::vec(-9i64..9, 0..8),
    ) {
        let kernel = SolveKernel::select(&fb);
        let history = &history[..history.len().min(fb.len())];
        for n in boundary_lengths(input.len()) {
            let n = n.min(input.len());
            let mut got = input[..n].to_vec();
            kernel.solve_in_place_with_history(history, &mut got);
            prop_assert_eq!(&got, &scalar_ref(&fb, history, &input[..n]),
                "{:?} history {:?} n={}", &fb, history, n);
        }
    }

    #[test]
    fn blocked_kernel_itself_is_exact_for_i64(
        fb in int_feedback(),
        input in proptest::collection::vec(-9i64..9, 0..(6 * BLOCK)),
        history in proptest::collection::vec(-9i64..9, 0..4),
    ) {
        // Auto dispatch may pick SIMD over blocked for integers, so
        // drive the blocked kernel directly: the rewrite must be exact
        // in wrapping-integer arithmetic whenever it applies (orders
        // 1..=MAX_BLOCKED_ORDER).
        prop_assume!(fb.len() <= MAX_BLOCKED_ORDER);
        let kernel = BlockedKernel::try_new(&fb).expect("low orders are blockable");
        let history = &history[..history.len().min(fb.len())];
        for n in boundary_lengths(input.len()) {
            let n = n.min(input.len());
            let mut got = input[..n].to_vec();
            kernel.solve_in_place_with_history(history, &mut got);
            prop_assert_eq!(&got, &scalar_ref(&fb, history, &input[..n]),
                "{:?} history {:?} n={}", &fb, history, n);
        }
    }

    #[test]
    fn dispatched_kernel_matches_scalar_for_f64(
        fb in stable_float_feedback(),
        input in proptest::collection::vec(-4.0f64..4.0, 0..(6 * BLOCK)),
        history in proptest::collection::vec(-4.0f64..4.0, 0..8),
    ) {
        let kernel = SolveKernel::select(&fb);
        // Low orders leave the scalar loop under Auto (blocked or SIMD,
        // per CPU) — asserted tier-explicitly so the forced-tier CI legs
        // (`PLR_KERNEL=scalar` et al.) still run this suite unchanged.
        let auto = SolveKernel::select_with_tier(&fb, KernelTier::Auto);
        prop_assert_eq!(!auto.is_scalar(), fb.len() <= MAX_BLOCKED_ORDER);
        let history = &history[..history.len().min(fb.len())];
        for n in boundary_lengths(input.len()) {
            let n = n.min(input.len());
            let mut got = input[..n].to_vec();
            kernel.solve_in_place_with_history(history, &mut got);
            let expect = scalar_ref(&fb, history, &input[..n]);
            assert_close(&expect, &got, 4096.0, &format!("{fb:?} n={n}"))?;
        }
    }

    #[test]
    fn dispatched_kernel_matches_scalar_for_f32(
        fb64 in stable_float_feedback(),
        input64 in proptest::collection::vec(-4.0f64..4.0, 0..(6 * BLOCK)),
    ) {
        let fb: Vec<f32> = fb64.iter().map(|&v| v as f32).collect();
        let input: Vec<f32> = input64.iter().map(|&v| v as f32).collect();
        let kernel = SolveKernel::select(&fb);
        let auto = SolveKernel::select_with_tier(&fb, KernelTier::Auto);
        prop_assert_eq!(!auto.is_scalar(), fb.len() <= MAX_BLOCKED_ORDER);
        for n in boundary_lengths(input.len()) {
            let n = n.min(input.len());
            let mut got = input[..n].to_vec();
            kernel.solve_in_place(&mut got);
            let expect = scalar_ref(&fb, &[], &input[..n]);
            let scale = expect.iter().fold(1.0f32, |m, v| m.max(v.abs()));
            for (a, b) in expect.iter().zip(&got) {
                prop_assert!(
                    (a - b).abs() <= 4096.0 * f32::EPSILON * scale,
                    "{:?} n={}: {} vs {}", &fb, n, a, b
                );
            }
        }
    }

    #[test]
    fn restarting_at_any_split_matches_one_shot(
        fb in stable_float_feedback(),
        input in proptest::collection::vec(-4.0f64..4.0, (2 * BLOCK)..(5 * BLOCK)),
        split_seed in 1usize..1000,
    ) {
        // Chunked executors hand the kernel arbitrary chunk boundaries;
        // continuing through explicit history must match the unsplit run.
        prop_assume!(fb.len() <= MAX_BLOCKED_ORDER);
        let kernel = SolveKernel::select(&fb);
        let split = split_seed % (input.len() - 1) + 1;
        let mut whole = input.clone();
        kernel.solve_in_place(&mut whole);

        let (left, right) = input.split_at(split);
        let mut l = left.to_vec();
        kernel.solve_in_place(&mut l);
        let history: Vec<f64> = l.iter().rev().take(fb.len()).copied().collect();
        let mut r = right.to_vec();
        kernel.solve_in_place_with_history(&history, &mut r);
        l.extend(r);
        assert_close(&whole, &l, 8192.0, &format!("{fb:?} split={split}"))?;
    }
}
