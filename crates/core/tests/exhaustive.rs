//! Bounded-exhaustive verification: instead of sampling random cases,
//! enumerate *every* signature and chunking below a size bound and check
//! the parallel formulations against the serial reference. Small-scope
//! bugs (off-by-one carries, boundary chunks, order-vs-chunk interactions)
//! live exactly in this space.

use plr_core::engine::{CarryPropagation, Engine, EngineConfig, LocalSolve};
use plr_core::nacci::CorrectionTable;
use plr_core::signature::Signature;
use plr_core::{phase1, phase2, serial};

/// All feedback lists of order 1..=2 with coefficients in [-2, 2] and a
/// nonzero trailing coefficient.
fn all_feedbacks() -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    for b1 in -2i64..=2 {
        if b1 != 0 {
            out.push(vec![b1]);
        }
    }
    for b1 in -2i64..=2 {
        for b2 in -2i64..=2 {
            if b2 != 0 {
                out.push(vec![b1, b2]);
            }
        }
    }
    out
}

/// A deterministic input that exercises sign changes and zeros.
fn input(n: usize) -> Vec<i64> {
    (0..n)
        .map(|i| ((i as i64).wrapping_mul(7) % 5) - 2)
        .collect()
}

#[test]
fn every_small_signature_and_length_matches_serial() {
    // 24 feedbacks × 25 lengths × 3 chunkings × 4 strategy pairs.
    for fb in all_feedbacks() {
        let sig = Signature::new(vec![1i64], fb.clone()).unwrap();
        for n in 0..25 {
            let x = input(n);
            let expect = serial::run(&sig, &x);
            for chunk_pow in [1usize, 2, 3] {
                let m = 1 << chunk_pow;
                if m < sig.order() {
                    continue;
                }
                for local in [LocalSolve::HierarchicalDoubling, LocalSolve::Serial] {
                    for carry in [CarryPropagation::Sequential, CarryPropagation::Decoupled] {
                        let engine = Engine::with_config(
                            sig.clone(),
                            EngineConfig {
                                chunk_size: m,
                                local_solve: local,
                                carry_propagation: carry,
                                flush_denormals: false,
                            },
                        )
                        .unwrap();
                        let got = engine.run(&x).unwrap();
                        assert_eq!(got, expect, "fb {fb:?} n {n} m {m} {local:?} {carry:?}");
                    }
                }
            }
        }
    }
}

#[test]
fn every_small_merge_is_exact() {
    // Exhaustive chunk-merge identity: all splits of all lengths <= 12.
    for fb in all_feedbacks() {
        for n in 1..=12usize {
            let x = input(n);
            let mut whole = x.clone();
            serial::recursive_in_place(&fb, &mut whole);
            for split in 1..n {
                let (a, b) = x.split_at(split);
                let mut left = a.to_vec();
                let mut right = b.to_vec();
                serial::recursive_in_place(&fb, &mut left);
                serial::recursive_in_place(&fb, &mut right);
                let table = CorrectionTable::generate(&fb, right.len());
                let carries = plr_core::nacci::carries_of(&left, fb.len());
                table.correct_chunk(&mut right, &carries);
                assert_eq!(
                    &whole[..split],
                    left.as_slice(),
                    "fb {fb:?} n {n} split {split}"
                );
                assert_eq!(
                    &whole[split..],
                    right.as_slice(),
                    "fb {fb:?} n {n} split {split}"
                );
            }
        }
    }
}

#[test]
fn every_small_doubling_schedule_is_exact() {
    // phase1 + phase2 at every power-of-two target for every small length.
    for fb in all_feedbacks() {
        let k = fb.len();
        let sig = Signature::new(vec![1i64], fb.clone()).unwrap();
        for n in 1..=32usize {
            let x = input(n);
            let expect = serial::run(&sig, &x);
            for target_pow in 0..=5usize {
                let m = 1 << target_pow;
                if m < k {
                    continue;
                }
                let table = CorrectionTable::generate(&fb, m.max(1));
                let mut data = x.clone();
                phase1::run(&table, &mut data, m);
                phase2::propagate_sequential(&table, &mut data, m);
                assert_eq!(data, expect, "fb {fb:?} n {n} m {m}");
            }
        }
    }
}

#[test]
fn every_lookback_window_is_exact() {
    // All (chunks, window) pairs for a fixed small geometry.
    let m = 4usize;
    for fb in all_feedbacks() {
        let k = fb.len();
        if k > m {
            continue;
        }
        let table = CorrectionTable::generate(&fb, m);
        let n = 8 * m;
        let x = input(n);
        let mut locals = x.clone();
        for c in locals.chunks_mut(m) {
            serial::recursive_in_place(&fb, c);
        }
        let local_carries: Vec<Vec<i64>> = locals
            .chunks(m)
            .map(|c| plr_core::nacci::carries_of(c, k))
            .collect();
        let mut global = locals.clone();
        phase2::propagate_sequential(&table, &mut global, m);
        let global_carries: Vec<Vec<i64>> = global
            .chunks(m)
            .map(|c| plr_core::nacci::carries_of(c, k))
            .collect();
        for c in 1..8usize {
            for depth in 1..=c {
                let lens = vec![m; depth];
                let derived = phase2::lookback_carries(
                    &table,
                    &global_carries[c - depth],
                    &local_carries[c - depth + 1..=c],
                    &lens,
                );
                assert_eq!(
                    derived, global_carries[c],
                    "fb {fb:?} chunk {c} depth {depth}"
                );
            }
        }
    }
}
