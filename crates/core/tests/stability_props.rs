//! Property tests for the conservative decay-length estimate.
//!
//! The contract under test is the one the correction-plan layer stakes
//! truncation on: whenever [`StabilityReport::decay_length`] returns an
//! estimate `L`, the flush-to-zero factor table generated from the *same*
//! coefficients must be exactly zero from index `L` onward, for every
//! pole configuration — distinct, repeated, or clustered. The historical
//! bug (a radius-only `log(threshold)/log(ρ)` estimate) undershot on
//! repeated poles, where the impulse response grows like `n^{k-1}·ρⁿ`
//! before decaying; these tests construct signatures *from* root sets so
//! multiplicity is explicit rather than accidental.

use plr_core::nacci::CorrectionTable;
use plr_core::stability::{analyze, StabilityReport};
use plr_core::Element;
use proptest::prelude::*;

/// Expands `∏ (x − rᵢ)` and returns the feedback coefficients `b_j` of
/// `y[n] = Σ b_j·y[n−j]` (the negated non-leading coefficients of the
/// monic characteristic polynomial), rounded to `f32`.
fn feedback_from_roots(roots: &[f64]) -> Vec<f32> {
    let mut poly = vec![1.0f64];
    for &r in roots {
        let mut next = vec![0.0; poly.len() + 1];
        for (i, &c) in poly.iter().enumerate() {
            next[i] += c;
            next[i + 1] -= c * r;
        }
        poly = next;
    }
    poly[1..].iter().map(|&c| (-c) as f32).collect()
}

/// First index from which every factor list is exactly zero under
/// flush-to-zero, i.e. one past the last nonzero entry across all lists.
fn underflow_index(table: &CorrectionTable<f32>) -> usize {
    (0..table.order())
        .filter_map(|r| table.list(r).iter().rposition(|&v| v != 0.0))
        .map(|i| i + 1)
        .max()
        .unwrap_or(0)
}

/// Asserts `decay_length`'s soundness half: if the report commits to an
/// estimate, the actual flushed table must be dead from that index on.
/// Returns the report for callers that also want to assert liveness.
fn assert_estimate_covers(fb: &[f32]) -> (StabilityReport, Option<usize>) {
    let report = analyze(fb);
    let est = report.decay_length(<f32 as Element>::FLUSH_THRESHOLD);
    if let Some(est) = est {
        assert!(
            est < 200_000,
            "estimate {est} is uselessly large for {fb:?}"
        );
        let table = CorrectionTable::generate_with(fb, est + 32, true);
        let actual = underflow_index(&table);
        assert!(
            actual <= est,
            "estimate {est} undershoots actual underflow index {actual} for {fb:?} \
             (radius {}, residual {:e})",
            report.spectral_radius,
            report.residual,
        );
    }
    (report, est)
}

#[test]
fn double_pole_regression() {
    // (1: 1.6, -0.64) = (z − 0.8)²: the impulse response peaks near
    // n·0.8ⁿ's maximum and decays ~390 elements *later* than a single
    // 0.8 pole would suggest. The estimate must exist (the analysis
    // converges on the split-by-rounding pair) and must cover.
    let (report, est) = assert_estimate_covers(&[1.6, -0.64]);
    assert!(report.converged, "residual {:e}", report.residual);
    let est = est.expect("stable double pole must yield an estimate");
    // A radius-only estimate would say ~400; the real table stays alive
    // past that, so the covering estimate is necessarily larger.
    let naive = (<f32 as Element>::FLUSH_THRESHOLD.ln() / 0.8f64.ln()).ceil() as usize;
    let table = CorrectionTable::generate_with(&[1.6f32, -0.64], est + 32, true);
    assert!(
        underflow_index(&table) > naive,
        "double pole should outlive the naive radius bound {naive}"
    );
    assert!(est >= underflow_index(&table));
}

#[test]
fn triple_pole_is_covered() {
    // (z − 0.7)³ — multiplicity 3, well inside the unit circle.
    let fb = feedback_from_roots(&[0.7, 0.7, 0.7]);
    let (_, est) = assert_estimate_covers(&fb);
    assert!(est.is_some(), "stable triple pole must yield an estimate");
}

#[test]
fn single_pole_estimate_is_tight_enough() {
    // (1: 0.8): 0.8ⁿ crosses the f32 flush threshold near n ≈ 390. The
    // bound may be conservative but must stay the same order of
    // magnitude, or truncation would never engage at realistic chunks.
    let (_, est) = assert_estimate_covers(&[0.8]);
    let est = est.expect("stable single pole must yield an estimate");
    assert!((390..1000).contains(&est), "estimate {est} out of band");
}

#[test]
fn unstable_and_marginal_signatures_yield_none() {
    // Growing (radius > 1) and marginal (radius == 1) recurrences never
    // decay; the estimate must refuse rather than fabricate a depth.
    for fb in [&[2.0f32, -1.0][..], &[1.0], &[1.0, 1.0], &[-1.0]] {
        let report = analyze(fb);
        assert_eq!(
            report.decay_length(<f32 as Element>::FLUSH_THRESHOLD),
            None,
            "non-decaying {fb:?} must not get a truncation depth"
        );
    }
}

/// Root sets with explicit multiplicity structure: 1–4 real roots drawn
/// inside the stable disk, optionally collapsed onto the first root so
/// maximal-multiplicity configurations appear with high probability.
fn root_sets() -> impl Strategy<Value = Vec<f64>> {
    (
        proptest::collection::vec(-0.93f64..0.93, 1..5),
        proptest::bool::ANY,
    )
        .prop_map(|(mut roots, collapse)| {
            if collapse {
                let base = roots[0];
                roots.fill(base);
            }
            roots
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Soundness over arbitrary stable pole configurations: whenever the
    /// analysis commits to a depth, the flushed table is dead beyond it.
    #[test]
    fn estimate_covers_actual_underflow(roots in root_sets()) {
        let fb = feedback_from_roots(&roots);
        // Rounding the expanded polynomial to f32 can nudge a root
        // outside the disk for near-marginal sets; analyze() sees the
        // rounded coefficients, so its own verdict is what counts.
        assert_estimate_covers(&fb);
    }

    /// Liveness for comfortably-stable distinct roots: the analysis must
    /// actually produce an estimate there (a vacuous `None` would make
    /// the soundness property above pass while truncation never fires).
    #[test]
    fn distinct_stable_roots_yield_estimate(
        a in -0.85f64..0.85,
        gap in 0.05f64..0.1,
    ) {
        let b = if a + gap <= 0.9 { a + gap } else { a - gap };
        let fb = feedback_from_roots(&[a, b]);
        let (report, est) = assert_estimate_covers(&fb);
        prop_assert!(report.converged, "residual {:e}", report.residual);
        prop_assert!(est.is_some(), "no estimate for roots {a}, {b}");
    }
}
