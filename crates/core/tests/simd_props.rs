//! Differential property tests for the explicit SIMD kernel layer.
//!
//! Every kernel tier the runtime can dispatch to — forced scalar, forced
//! blocked, and an explicit [`SimdKernel`] on *each* ISA the machine
//! reports (always including [`Isa::Portable`]) — must agree on the same
//! inputs: bit-exactly for the wrapping integers (including the AVX2
//! half-width i64 multiply emulation and the AVX-512 `vpmullq` path, both
//! exercised here whenever the CPU has them), and within reassociation
//! tolerance for floats (the vector kernels contract multiply-add chains
//! into FMAs, so results differ from the scalar loop by rounding only).
//!
//! The same treatment covers the two steady-state helpers the executors
//! lean on: the FIR map tail ([`fir_steady_with`]) and the correction
//! fold ([`axpy_with`]).
//!
//! These tests construct kernels through the explicit `*_with` entry
//! points rather than the process-global `PLR_KERNEL` override, so they
//! are safe under the parallel test harness.

use plr_core::blocked::{SolveKernel, BLOCK, MAX_BLOCKED_ORDER};
use plr_core::element::Element;
use plr_core::kernel::KernelTier;
use plr_core::serial;
use plr_core::simd::{available_isas, axpy_with, fir_steady_with, SimdKernel, MAX_FIR_TAPS};
use proptest::prelude::*;

/// Lengths exercising every vector-block boundary around a random base.
fn boundary_lengths(base: usize) -> [usize; 7] {
    let edge = (base / BLOCK + 1) * BLOCK;
    [0, 1, BLOCK - 1, BLOCK, BLOCK + 1, edge + 1, base]
}

/// Integer feedback of order 1..=MAX_BLOCKED_ORDER so every tier
/// (including the SIMD kernels, which only cover blockable orders) has a
/// fast path to disagree with.
fn int_feedback() -> impl Strategy<Value = Vec<i64>> {
    let nonzero = prop_oneof![-3i64..=-1, 1i64..=3];
    (
        proptest::collection::vec(-3i64..=3, 0..MAX_BLOCKED_ORDER),
        nonzero,
    )
        .prop_map(|(mut fb, last)| {
            fb.push(last);
            fb
        })
}

/// Stable float feedback of order 1..=MAX_BLOCKED_ORDER (poles inside
/// (-0.8, 0.8) keep outputs bounded so the ULP comparison is meaningful).
fn stable_float_feedback() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-0.8f64..0.8, 1..MAX_BLOCKED_ORDER + 1).prop_filter_map(
        "nonzero poles",
        |poles| {
            if poles.iter().any(|p| p.abs() < 1e-2) {
                return None;
            }
            let mut c = vec![1.0f64];
            for &p in &poles {
                let mut next = vec![0.0; c.len() + 1];
                for (i, &ci) in c.iter().enumerate() {
                    next[i] += ci * -p;
                    next[i + 1] += ci;
                }
                c = next;
            }
            c.reverse();
            Some(c[1..].iter().map(|&v| -v).collect())
        },
    )
}

fn scalar_ref<T: Element>(fb: &[T], history: &[T], input: &[T]) -> Vec<T> {
    let mut out = input.to_vec();
    serial::recursive_in_place_with_history(fb, history, &mut out);
    out
}

/// Every solver the dispatcher can hand out for this feedback: the three
/// forced tiers plus one explicit SIMD kernel per available ISA.
fn all_solvers<T: Element>(fb: &[T]) -> Vec<(String, SolveKernel<T>)> {
    let mut out = vec![
        (
            "tier=scalar".to_string(),
            SolveKernel::select_with_tier(fb, KernelTier::Scalar),
        ),
        (
            "tier=blocked".to_string(),
            SolveKernel::select_with_tier(fb, KernelTier::Blocked),
        ),
        (
            "tier=simd".to_string(),
            SolveKernel::select_with_tier(fb, KernelTier::Simd),
        ),
        (
            "tier=auto".to_string(),
            SolveKernel::select_with_tier(fb, KernelTier::Auto),
        ),
    ];
    for isa in available_isas::<T>() {
        if let Some(k) = SimdKernel::try_new_with(fb, isa) {
            out.push((format!("isa={isa:?}"), SolveKernel::Simd(k)));
        }
    }
    out
}

/// ULP-scaled closeness: reassociation and FMA contraction move each
/// output by a few ULP of the largest value in play.
fn assert_close(expect: &[f64], got: &[f64], ulps: f64, ctx: &str) -> Result<(), TestCaseError> {
    let scale = expect.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    for (i, (a, b)) in expect.iter().zip(got).enumerate() {
        prop_assert!(
            (a - b).abs() <= ulps * f64::EPSILON * scale,
            "{ctx}: index {i}: {a} vs {b} (scale {scale})"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_tier_and_isa_is_bit_exact_for_i64(
        fb in int_feedback(),
        input in proptest::collection::vec(-9i64..9, 0..(6 * BLOCK)),
        history in proptest::collection::vec(-9i64..9, 0..MAX_BLOCKED_ORDER),
    ) {
        let history = &history[..history.len().min(fb.len())];
        for n in boundary_lengths(input.len()) {
            let n = n.min(input.len());
            let expect = scalar_ref(&fb, history, &input[..n]);
            for (name, kernel) in all_solvers(&fb) {
                let mut got = input[..n].to_vec();
                kernel.solve_in_place_with_history(history, &mut got);
                prop_assert_eq!(&got, &expect,
                    "{} fb={:?} history={:?} n={}", name, &fb, history, n);
            }
        }
    }

    #[test]
    fn every_tier_and_isa_is_bit_exact_for_i32(
        fb64 in int_feedback(),
        input64 in proptest::collection::vec(-9i64..9, 0..(6 * BLOCK)),
        history64 in proptest::collection::vec(-9i64..9, 0..MAX_BLOCKED_ORDER),
    ) {
        let fb: Vec<i32> = fb64.iter().map(|&v| v as i32).collect();
        let input: Vec<i32> = input64.iter().map(|&v| v as i32).collect();
        let history: Vec<i32> = history64.iter().map(|&v| v as i32).collect();
        let history = &history[..history.len().min(fb.len())];
        for n in boundary_lengths(input.len()) {
            let n = n.min(input.len());
            let expect = scalar_ref(&fb, history, &input[..n]);
            for (name, kernel) in all_solvers(&fb) {
                let mut got = input[..n].to_vec();
                kernel.solve_in_place_with_history(history, &mut got);
                prop_assert_eq!(&got, &expect,
                    "{} fb={:?} history={:?} n={}", name, &fb, history, n);
            }
        }
    }

    #[test]
    fn every_tier_and_isa_matches_scalar_for_f64(
        fb in stable_float_feedback(),
        input in proptest::collection::vec(-4.0f64..4.0, 0..(6 * BLOCK)),
        history in proptest::collection::vec(-4.0f64..4.0, 0..MAX_BLOCKED_ORDER),
    ) {
        let history = &history[..history.len().min(fb.len())];
        for n in boundary_lengths(input.len()) {
            let n = n.min(input.len());
            let expect = scalar_ref(&fb, history, &input[..n]);
            for (name, kernel) in all_solvers(&fb) {
                let mut got = input[..n].to_vec();
                kernel.solve_in_place_with_history(history, &mut got);
                assert_close(&expect, &got, 4096.0, &format!("{name} fb={fb:?} n={n}"))?;
            }
        }
    }

    #[test]
    fn every_tier_and_isa_matches_scalar_for_f32(
        fb64 in stable_float_feedback(),
        input64 in proptest::collection::vec(-4.0f64..4.0, 0..(6 * BLOCK)),
    ) {
        let fb: Vec<f32> = fb64.iter().map(|&v| v as f32).collect();
        let input: Vec<f32> = input64.iter().map(|&v| v as f32).collect();
        for n in boundary_lengths(input.len()) {
            let n = n.min(input.len());
            let expect = scalar_ref(&fb, &[], &input[..n]);
            let scale = expect.iter().fold(1.0f32, |m, v| m.max(v.abs()));
            for (name, kernel) in all_solvers(&fb) {
                let mut got = input[..n].to_vec();
                kernel.solve_in_place(&mut got);
                for (i, (a, b)) in expect.iter().zip(&got).enumerate() {
                    prop_assert!(
                        (a - b).abs() <= 4096.0 * f32::EPSILON * scale,
                        "{} fb={:?} n={} index {}: {} vs {}", name, &fb, n, i, a, b
                    );
                }
            }
        }
    }

    #[test]
    fn restart_with_history_agrees_across_isas(
        fb in int_feedback(),
        input in proptest::collection::vec(-9i64..9, (2 * BLOCK)..(5 * BLOCK)),
        split_seed in 1usize..1000,
    ) {
        // Chunked executors restart the kernel mid-stream through explicit
        // history; the split run must be bit-identical to the one-shot run
        // on every ISA.
        let split = split_seed % (input.len() - 1) + 1;
        let whole = scalar_ref(&fb, &[], &input);
        for (name, kernel) in all_solvers(&fb) {
            let (left, right) = input.split_at(split);
            let mut l = left.to_vec();
            kernel.solve_in_place(&mut l);
            let history: Vec<i64> = l.iter().rev().take(fb.len()).copied().collect();
            let mut r = right.to_vec();
            kernel.solve_in_place_with_history(&history, &mut r);
            l.extend(r);
            prop_assert_eq!(&l, &whole, "{} fb={:?} split={}", name, &fb, split);
        }
    }

    #[test]
    fn fir_steady_kernels_match_scalar(
        fir64 in proptest::collection::vec(-3i64..=3, 1..MAX_FIR_TAPS + 1),
        input in proptest::collection::vec(-9i64..9, 0..(6 * BLOCK)),
    ) {
        // The vector FIR takes some suffix of the chunk (whole vectors
        // only); whatever it claims must match the scalar convolution on
        // that suffix, with the prefix untouched.
        let fir: Vec<i64> = fir64;
        let head = fir.len() - 1;
        for n in boundary_lengths(input.len()) {
            let n = n.min(input.len());
            let input = &input[..n];
            let mut expect = input.to_vec();
            for i in (head..n).rev() {
                let mut acc = 0i64;
                for (j, &c) in fir.iter().enumerate() {
                    acc = acc.wrapping_add(c.wrapping_mul(input[i - j]));
                }
                expect[i] = acc;
            }
            for isa in available_isas::<i64>() {
                let mut got = input.to_vec();
                let done = fir_steady_with(isa, &fir, &mut got, head);
                prop_assert!(done <= n.saturating_sub(head), "{isa:?}: did too much");
                prop_assert_eq!(&got[..n - done], &input[..n - done],
                    "{:?} fir={:?} n={}: prefix touched", isa, &fir, n);
                prop_assert_eq!(&got[n - done..], &expect[n - done..],
                    "{:?} fir={:?} n={} done={}", isa, &fir, n, done);
            }
        }
    }

    #[test]
    fn fir_steady_kernels_match_scalar_f64(
        fir in proptest::collection::vec(-1.5f64..1.5, 1..MAX_FIR_TAPS + 1),
        input in proptest::collection::vec(-4.0f64..4.0, 0..(6 * BLOCK)),
    ) {
        let head = fir.len() - 1;
        for n in boundary_lengths(input.len()) {
            let n = n.min(input.len());
            let input = &input[..n];
            let mut expect = input.to_vec();
            for i in (head..n).rev() {
                let mut acc = 0.0f64;
                for (j, &c) in fir.iter().enumerate() {
                    acc += c * input[i - j];
                }
                expect[i] = acc;
            }
            for isa in available_isas::<f64>() {
                let mut got = input.to_vec();
                let done = fir_steady_with(isa, &fir, &mut got, head);
                prop_assert!(done <= n.saturating_sub(head), "{isa:?}: did too much");
                assert_close(&expect[n - done..], &got[n - done..], 64.0,
                    &format!("{isa:?} fir={fir:?} n={n} done={done}"))?;
                prop_assert_eq!(&got[..n - done], &input[..n - done],
                    "{:?} fir={:?} n={}: prefix touched", isa, &fir, n);
            }
        }
    }

    #[test]
    fn axpy_kernels_match_scalar(
        list in proptest::collection::vec(-9i64..9, 0..(6 * BLOCK)),
        dst in proptest::collection::vec(-9i64..9, 0..(6 * BLOCK)),
        carry in -9i64..9,
    ) {
        let lim = list.len().min(dst.len());
        let mut expect = dst.clone();
        for (d, &f) in expect[..lim].iter_mut().zip(&list) {
            *d = d.wrapping_add(f.wrapping_mul(carry));
        }
        for isa in available_isas::<i64>() {
            let mut got = dst.clone();
            if axpy_with(isa, &mut got[..lim], &list, carry) {
                prop_assert_eq!(&got[..lim], &expect[..lim], "{:?} lim={}", isa, lim);
                prop_assert_eq!(&got[lim..], &dst[lim..], "{:?}: tail touched", isa);
            }
        }
    }

    #[test]
    fn axpy_kernels_match_scalar_f64(
        list in proptest::collection::vec(-4.0f64..4.0, 0..(6 * BLOCK)),
        dst in proptest::collection::vec(-4.0f64..4.0, 0..(6 * BLOCK)),
        carry in -4.0f64..4.0,
    ) {
        let lim = list.len().min(dst.len());
        let mut expect = dst.clone();
        for (d, &f) in expect[..lim].iter_mut().zip(&list) {
            *d += f * carry;
        }
        for isa in available_isas::<f64>() {
            let mut got = dst.clone();
            if axpy_with(isa, &mut got[..lim], &list, carry) {
                assert_close(&expect[..lim], &got[..lim], 64.0, &format!("{isa:?} lim={lim}"))?;
                prop_assert_eq!(&got[lim..], &dst[lim..], "{:?}: tail touched", isa);
            }
        }
    }
}

#[test]
fn forced_simd_tier_reports_a_simd_kind() {
    use plr_core::kernel::KernelKind;
    let fb = [2i64, -1];
    let kernel = SolveKernel::select_with_tier(&fb, KernelTier::Simd);
    assert!(
        matches!(
            kernel.kind(),
            KernelKind::SimdPortable | KernelKind::SimdAvx2 | KernelKind::SimdAvx512
        ),
        "forced SIMD must land on a SIMD kernel (got {:?})",
        kernel.kind()
    );
}
