//! One service shard: a private [`WorkerPool`] draining a weighted-fair
//! queue of admitted rows, with service-time estimation, relaunch-on-fault,
//! and a serial degraded mode.
//!
//! The drain loop deliberately mirrors the streaming layer
//! (`plr_parallel::stream`): one long-lived `pool.submit` run whose
//! workers pop rows and execute them through [`RowTask::apply`] under
//! per-row `catch_unwind`, cancel-token attachment, and watchdog
//! deadlines. The differences are the service concerns layered on top:
//!
//! - rows come out of a [`Wfq`] (per-tenant weighted shares), not a FIFO;
//! - every executed row feeds a per-shard EWMA of service time, which is
//!   what admission control turns into queue-delay estimates;
//! - a run that dies to a worker fault is **relaunched** (bounded times
//!   between observed progress) instead of killing the shard, and past
//!   the bound the shard *degrades* to executing admitted rows serially
//!   on the submitter's thread rather than going dark.

use crate::handle::HandleInner;
use crate::lock_recover;
use crate::tenant::{TenantCounters, TenantRuntime};
use crate::wfq::Wfq;
use plr_core::element::Element;
use plr_core::error::EngineError;
use plr_parallel::pool::WorkerExit;
use plr_parallel::{
    AbortReason, AbortSignal, CancelToken, RunControl, RunHandle, RunStats, WorkerPanic, WorkerPool,
};
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How often a parked shard worker re-checks the run-level abort flag
/// while waiting for rows (bounds shutdown/cancel latency).
const POLL: Duration = Duration::from_millis(10);

/// Consecutive run relaunches tolerated without a single row of progress
/// before the shard degrades to serial fallback. Any processed row resets
/// the streak, so a long-lived shard can survive arbitrarily many faults
/// as long as it keeps doing work between them.
const MAX_RELAUNCHES: u32 = 16;

thread_local! {
    /// True while this thread is inside a `submit` call launching the
    /// shard run. If the pool's driver cannot spawn, `submit` degrades to
    /// running the job synchronously on this very thread — which for a
    /// drain loop means no row could ever arrive. The worker detects the
    /// re-entry and flips the shard to degraded mode instead of spinning.
    static INLINE_LAUNCH: Cell<bool> = const { Cell::new(false) };
}

struct InlineLaunchGuard;

impl Drop for InlineLaunchGuard {
    fn drop(&mut self) {
        INLINE_LAUNCH.with(|f| f.set(false));
    }
}

/// One admitted row queued on a shard.
pub(crate) struct ServiceRow<T> {
    pub index: usize,
    pub data: Vec<T>,
    pub ctl: RunControl,
    pub inner: Arc<HandleInner<T>>,
    pub runtime: Arc<TenantRuntime<T>>,
}

struct ShardState<T> {
    wfq: Wfq<ServiceRow<T>>,
    closed: bool,
    degraded: bool,
    /// Relaunches since the last observed progress.
    relaunches: u32,
    /// `processed` snapshot at the last relaunch decision.
    last_processed: u64,
    /// Monotonic run generation; guards the handle slot against the
    /// relaunch-during-launch race (see `submit_run`).
    run_gen: u64,
    run: Option<RunHandle>,
}

pub(crate) struct ShardShared<T> {
    state: Mutex<ShardState<T>>,
    ready: Condvar,
    /// EWMA of per-row wall service time in nanoseconds (0 = no sample
    /// yet; admission is optimistic until the first rows complete).
    ewma_ns: AtomicU64,
    /// Mirrors `wfq.len()` for lock-free shard selection.
    queued: AtomicUsize,
    /// Rows popped but not yet resolved.
    in_service: AtomicUsize,
    /// Rows executed (including degraded-inline ones); progress signal
    /// for the relaunch bound.
    processed: AtomicU64,
    /// Per-shard row sequence for fault-site targeting and diagnostics.
    next_index: AtomicUsize,
    /// Cumulative drain-run relaunches (reported in stats).
    total_relaunches: AtomicU64,
    /// Nominal pool width used by delay estimation.
    width: usize,
}

/// One shard: pool + shared drain state + shutdown token.
pub(crate) struct Shard<T: Element> {
    pool: Arc<WorkerPool>,
    shared: Arc<ShardShared<T>>,
    token: CancelToken,
}

/// Point-in-time shard health, from
/// [`ServiceCore::stats`](crate::ServiceCore::stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Nominal worker count (the calling thread included).
    pub width: usize,
    /// Rows admitted but not yet popped by a worker.
    pub queued: usize,
    /// Rows being solved right now.
    pub in_service: usize,
    /// EWMA of per-row service time in nanoseconds (0 = no sample yet).
    pub ewma_service_nanos: u64,
    /// Rows executed on this shard since creation.
    pub processed: u64,
    /// Times the drain run was relaunched after a worker fault.
    pub relaunches: u64,
    /// Whether the shard has fallen back to serial inline execution.
    pub degraded: bool,
}

impl<T: Element> Shard<T> {
    pub fn new(width: usize) -> Self {
        let shared = Arc::new(ShardShared {
            state: Mutex::new(ShardState {
                wfq: Wfq::new(),
                closed: false,
                degraded: false,
                relaunches: 0,
                last_processed: 0,
                run_gen: 0,
                run: None,
            }),
            ready: Condvar::new(),
            ewma_ns: AtomicU64::new(0),
            queued: AtomicUsize::new(0),
            in_service: AtomicUsize::new(0),
            processed: AtomicU64::new(0),
            next_index: AtomicUsize::new(0),
            total_relaunches: AtomicU64::new(0),
            width: width.max(1),
        });
        let shard = Shard {
            pool: Arc::new(WorkerPool::new(width.max(1))),
            shared,
            token: CancelToken::new(),
        };
        submit_run(&shard.pool, &shard.shared, &shard.token);
        shard
    }

    /// Estimated queue delay for a newly admitted row, in nanoseconds:
    /// `backlog / width` service times ahead of it. Lock-free — used by
    /// the core to pick the least-loaded shard.
    pub fn est_delay_ns(&self) -> u64 {
        let backlog = (self.shared.queued.load(Ordering::Relaxed)
            + self.shared.in_service.load(Ordering::Relaxed)) as u64;
        self.shared
            .ewma_ns
            .load(Ordering::Relaxed)
            .saturating_mul(backlog)
            / self.shared.width as u64
    }

    pub fn stats(&self) -> ShardStats {
        let degraded = lock_recover(&self.shared.state).degraded;
        ShardStats {
            width: self.shared.width,
            queued: self.shared.queued.load(Ordering::Relaxed),
            in_service: self.shared.in_service.load(Ordering::Relaxed),
            ewma_service_nanos: self.shared.ewma_ns.load(Ordering::Relaxed),
            processed: self.shared.processed.load(Ordering::Relaxed),
            relaunches: self.shared.total_relaunches.load(Ordering::Relaxed),
            degraded,
        }
    }

    /// Admission decision for one row, made under the shard lock. `None`
    /// verdict means admitted (enqueued or executed inline when
    /// degraded); `Some(err)` is the shed verdict, in precedence order:
    /// hard queue cap, per-tenant weighted backlog cap, deadline
    /// feasibility.
    #[allow(clippy::too_many_arguments)]
    pub fn admit(
        &self,
        tenant: usize,
        runtime: &Arc<TenantRuntime<T>>,
        data: Vec<T>,
        ctl: RunControl,
        deadline_budget: Option<Duration>,
        inner: &Arc<HandleInner<T>>,
        max_queue: usize,
    ) -> Result<(), EngineError> {
        let ewma = self.shared.ewma_ns.load(Ordering::Relaxed);
        let mut st = lock_recover(&self.shared.state);
        if st.degraded {
            // Serial fallback: the shard's parallel run is gone for good,
            // but admitted traffic still completes — on this thread.
            drop(st);
            let index = self.shared.next_index.fetch_add(1, Ordering::Relaxed);
            let row = ServiceRow {
                index,
                data,
                ctl,
                inner: Arc::clone(inner),
                runtime: Arc::clone(runtime),
            };
            execute_row_inline(&self.pool, &self.shared, row);
            return Ok(());
        }
        let queued = st.wfq.len();
        // 1. Hard cap: the queue is a bounded resource, full stop.
        if queued >= max_queue {
            return Err(EngineError::Overloaded {
                retry_after_hint: Duration::from_nanos(ewma.max(100_000)),
            });
        }
        // 2. Weighted backlog cap, enforced once the queue passes half
        //    full: tenant i may hold at most its weight's share of the
        //    remaining capacity, so under pressure the lowest-weight
        //    tenants hit their cap (shed) first while heavier tenants
        //    keep their contracted share.
        if queued >= max_queue / 2 {
            let weight = f64::from(runtime.weight.max(1));
            let mut active = st.wfq.active_weight();
            if st.wfq.backlog(tenant) == 0 {
                active += weight;
            }
            let cap = ((max_queue as f64 * weight / active) as usize).max(1);
            if st.wfq.backlog(tenant) >= cap {
                return Err(EngineError::Overloaded {
                    retry_after_hint: Duration::from_nanos(ewma.max(100_000)),
                });
            }
        }
        // 3. Deadline feasibility: the estimated queue delay may claim at
        //    most *half* the row's budget — the other half is reserved
        //    for the solve itself, scheduler jitter, and estimate error
        //    (the EWMA is an average; admitting right up to the budget
        //    would turn every above-average service time into a miss).
        //    The wait estimate is weight-aware — under WFQ a tenant's own
        //    backlog drains at its *fair-share* rate `w_i / W_active` of
        //    the shard, so a low-weight tenant behind the same queue sees
        //    a proportionally longer delay (and is therefore shed first
        //    as pressure builds, which is the intended degradation
        //    order).
        if let Some(budget) = deadline_budget {
            let weight = f64::from(runtime.weight.max(1));
            let active = {
                let mut a = st.wfq.active_weight();
                if st.wfq.backlog(tenant) == 0 {
                    a += weight;
                }
                a
            };
            let own_ahead = st.wfq.backlog(tenant) as f64
                + self.shared.in_service.load(Ordering::Relaxed) as f64 / 2.0;
            let est_ns = (ewma as f64
                * (1.0 + own_ahead * active / weight / self.shared.width as f64))
                as u64;
            if u128::from(est_ns).saturating_mul(2) > budget.as_nanos() {
                let budget_ns = (budget.as_nanos() / 2).min(u128::from(u64::MAX)) as u64;
                return Err(EngineError::Overloaded {
                    retry_after_hint: Duration::from_nanos(
                        est_ns.saturating_sub(budget_ns).max(100_000),
                    ),
                });
            }
        }
        let index = self.shared.next_index.fetch_add(1, Ordering::Relaxed);
        let cost = data.len() as f64;
        st.wfq.push(
            tenant,
            runtime.weight,
            cost,
            ServiceRow {
                index,
                data,
                ctl,
                inner: Arc::clone(inner),
                runtime: Arc::clone(runtime),
            },
        );
        self.shared.queued.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Closes intake for shutdown: workers exit once the queue drains.
    pub fn close(&self) {
        lock_recover(&self.shared.state).closed = true;
        self.shared.ready.notify_all();
    }

    /// Cancels everything in flight (rows resolve `Cancelled`).
    pub fn abort(&self) {
        self.token.cancel();
    }

    /// Waits for the drain run to finish (call after [`close`](Self::close)
    /// or [`abort`](Self::abort)); any rows the run left behind resolve
    /// `Cancelled`.
    pub fn join(&self) {
        let run = lock_recover(&self.shared.state).run.take();
        if let Some(handle) = run {
            let _ = handle.wait();
        }
        // Defensive final sweep — normally the run's completion callback
        // has already drained.
        drain_with(&self.shared, EngineError::Cancelled);
    }
}

/// Launches (or relaunches) the shard's drain run. The generation counter
/// closes the race between storing the new [`RunHandle`] and the previous
/// run's completion callback relaunching concurrently: the handle slot
/// only accepts the handle of the *current* generation, and a stale
/// handle is dropped only after its run has already finished (so the
/// drop-cancels semantics cannot kill a live run).
fn submit_run<T: Element>(
    pool: &Arc<WorkerPool>,
    shared: &Arc<ShardShared<T>>,
    token: &CancelToken,
) {
    let gen = {
        let mut st = lock_recover(&shared.state);
        st.run_gen += 1;
        st.run_gen
    };
    let handle = {
        let job_shared = Arc::clone(shared);
        let job_pool = Arc::clone(pool);
        INLINE_LAUNCH.with(|f| f.set(true));
        let _guard = InlineLaunchGuard;
        pool.submit(
            RunControl::new().with_cancel(token),
            move |worker, run_abort| shard_worker(&job_pool, &job_shared, worker, run_abort),
        )
    };
    {
        let cb_shared = Arc::downgrade(shared);
        let cb_pool = Arc::clone(pool);
        let cb_token = token.clone();
        handle.on_complete(move || {
            if let Some(shared) = cb_shared.upgrade() {
                on_run_complete(&cb_pool, &shared, &cb_token);
            }
        });
    }
    let mut st = lock_recover(&shared.state);
    if st.run_gen == gen {
        st.run = Some(handle);
    }
    // Otherwise the run already completed and its callback launched a
    // newer generation; `handle` is finished and safe to drop here.
}

/// Decides what happens when a drain run ends: graceful close → drain
/// leftovers; worker fault with budget left → relaunch; budget exhausted
/// → degrade to serial and execute the backlog inline.
fn on_run_complete<T: Element>(
    pool: &Arc<WorkerPool>,
    shared: &Arc<ShardShared<T>>,
    token: &CancelToken,
) {
    let mut st = lock_recover(&shared.state);
    if st.closed || token.is_cancelled() {
        drop(st);
        drain_with(shared, EngineError::Cancelled);
        return;
    }
    if st.degraded {
        let rows = take_rows(&mut st, shared);
        drop(st);
        for row in rows {
            execute_row_inline(pool, shared, row);
        }
        return;
    }
    // The run died to a worker fault. Relaunch while the shard is making
    // progress; give up (degrade) after MAX_RELAUNCHES barren attempts.
    let processed = shared.processed.load(Ordering::Relaxed);
    if processed > st.last_processed {
        st.relaunches = 0;
        st.last_processed = processed;
    }
    if st.relaunches >= MAX_RELAUNCHES {
        st.degraded = true;
        let rows = take_rows(&mut st, shared);
        drop(st);
        for row in rows {
            execute_row_inline(pool, shared, row);
        }
        return;
    }
    st.relaunches += 1;
    shared.total_relaunches.fetch_add(1, Ordering::Relaxed);
    drop(st);
    submit_run(pool, shared, token);
}

/// Pops everything out of the queue (state lock held by the caller).
fn take_rows<T>(st: &mut ShardState<T>, shared: &ShardShared<T>) -> VecDeque<ServiceRow<T>> {
    let rows: VecDeque<ServiceRow<T>> = st.wfq.drain().into_iter().map(|(_, row)| row).collect();
    shared.queued.fetch_sub(rows.len(), Ordering::Relaxed);
    rows
}

/// Resolves every queued row with `err` (shutdown/abort path).
fn drain_with<T: Element>(shared: &ShardShared<T>, err: EngineError) {
    let rows = {
        let mut st = lock_recover(&shared.state);
        take_rows(&mut st, shared)
    };
    for row in rows {
        TenantCounters::bump(&row.runtime.counters.failed);
        HandleInner::complete(&row.inner, row.data, Err(err.clone()));
    }
}

/// The long-lived drain loop every pool worker runs, mirroring
/// `stream_worker` with the WFQ pop in place of the FIFO pop.
fn shard_worker<T: Element>(
    pool: &Arc<WorkerPool>,
    shared: &Arc<ShardShared<T>>,
    worker: usize,
    run_abort: &AbortSignal,
) {
    loop {
        let row = {
            let mut st = lock_recover(&shared.state);
            loop {
                if run_abort.is_aborted() {
                    drop(st);
                    if matches!(run_abort.reason(), Some(AbortReason::Cancelled) | None) {
                        // Shutdown/abort: the queue will never drain
                        // normally; resolve it now.
                        drain_with(shared, EngineError::Cancelled);
                    }
                    // Worker fault: leave the queue intact for the
                    // relaunched run to pick up.
                    return;
                }
                if let Some((_, row)) = st.wfq.pop() {
                    shared.queued.fetch_sub(1, Ordering::Relaxed);
                    shared.in_service.fetch_add(1, Ordering::Relaxed);
                    break row;
                }
                if st.closed {
                    return;
                }
                if INLINE_LAUNCH.with(Cell::get) {
                    // Degenerate synchronous launch (no driver thread):
                    // no rows can ever arrive on this call. Flip to
                    // serial fallback and let admission execute inline.
                    st.degraded = true;
                    return;
                }
                // Timed wait so parked workers notice aborts within one
                // poll even if no notify ever arrives.
                st = shared
                    .ready
                    .wait_timeout(st, POLL)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        process_row(pool, shared, worker, row);
    }
}

/// Executes one row end to end: per-row abort signal, cancel attachment,
/// watchdog deadline, `catch_unwind`, EWMA/counter updates, handle
/// resolution. The execution core is byte-for-byte the streaming layer's
/// `process_one`.
fn process_row<T: Element>(
    pool: &Arc<WorkerPool>,
    shared: &ShardShared<T>,
    worker: usize,
    row: ServiceRow<T>,
) {
    let ServiceRow {
        index,
        mut data,
        ctl,
        inner,
        runtime,
    } = row;
    if let Err(e) = ctl.status() {
        // Cancelled or expired while queued: fail fast, no work.
        shared.in_service.fetch_sub(1, Ordering::Relaxed);
        TenantCounters::bump(&runtime.counters.failed);
        HandleInner::complete(&inner, data, Err(e.into_engine_error()));
        return;
    }
    let abort = Arc::new(AbortSignal::default());
    let row_att = ctl.cancel_token().map(|t| t.attach(&abort));
    let watch = ctl
        .deadline()
        .and_then(|(at, _)| pool.watchdog_arm(at, &abort));
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "fault-inject")]
        plr_parallel::fault::check(
            plr_parallel::fault::FaultSite::Row,
            worker,
            index,
            Some(&abort),
        );
        runtime.task.apply(&mut data, worker, index, Some(&abort))
    }));
    let wall = start.elapsed().as_nanos() as u64;
    drop(watch);
    drop(row_att);
    shared.in_service.fetch_sub(1, Ordering::Relaxed);
    shared.processed.fetch_add(1, Ordering::Relaxed);
    match outcome {
        Ok((fir_nanos, solve_nanos, solve_slices)) => {
            let result = match abort.reason() {
                None | Some(AbortReason::WorkerFault) => {
                    ewma_update(shared, wall);
                    note_success(&runtime, wall, data.len());
                    Ok(RunStats {
                        rows: 1,
                        chunks: 1,
                        threads: 1,
                        fir_nanos,
                        solve_nanos,
                        solve_slices,
                        plan_kind: runtime.task.plan_kind(),
                        kernel: runtime.task.kernel_kind(),
                        plan_cache_hits: runtime.plan_cache_hit as u64,
                        plan_cache_misses: !runtime.plan_cache_hit as u64,
                        ..RunStats::default()
                    })
                }
                Some(AbortReason::Cancelled) => {
                    TenantCounters::bump(&runtime.counters.failed);
                    Err(EngineError::Cancelled)
                }
                Some(AbortReason::DeadlineExceeded) => {
                    TenantCounters::bump(&runtime.counters.failed);
                    Err(EngineError::DeadlineExceeded {
                        deadline: ctl.deadline().map(|(_, b)| b).unwrap_or_default(),
                    })
                }
            };
            HandleInner::complete(&inner, data, result);
        }
        Err(payload) => {
            // The panic stays contained to this row: resolve its handle
            // first so nothing can dangle, then rethrow only the
            // worker-death sentinel so the pool retires the thread.
            TenantCounters::bump(&runtime.counters.failed);
            let err = WorkerPanic::from_payload(worker, payload.as_ref()).into_engine_error();
            HandleInner::complete(&inner, data, Err(err));
            if payload.is::<WorkerExit>() {
                resume_unwind(payload);
            }
        }
    }
}

/// Serial fallback: executes one admitted row synchronously on the
/// current thread (degraded shards and post-degradation backlog). Worker
/// id 0 — the caller is the worker, exactly like a width-1 pool.
fn execute_row_inline<T: Element>(
    pool: &Arc<WorkerPool>,
    shared: &ShardShared<T>,
    row: ServiceRow<T>,
) {
    shared.in_service.fetch_add(1, Ordering::Relaxed);
    process_row(pool, shared, 0, row);
}

fn note_success<T>(runtime: &TenantRuntime<T>, wall: u64, elems: usize) {
    TenantCounters::bump(&runtime.counters.completed);
    runtime
        .counters
        .service_nanos
        .fetch_add(wall, Ordering::Relaxed);
    runtime
        .counters
        .completed_elems
        .fetch_add(elems as u64, Ordering::Relaxed);
}

/// EWMA with alpha = 1/8: new = old + (sample - old) / 8. Racy
/// read-modify-write is fine — this is an estimate, not an invariant.
fn ewma_update<T>(shared: &ShardShared<T>, sample: u64) {
    let old = shared.ewma_ns.load(Ordering::Relaxed);
    let new = if old == 0 {
        sample
    } else {
        (old as i64 + (sample as i64 - old as i64) / 8) as u64
    };
    shared.ewma_ns.store(new.max(1), Ordering::Relaxed);
}
