//! Tenant identity, configuration, and per-tenant accounting.

use crate::quota::TokenBucket;
use plr_core::element::Element;
use plr_core::signature::Signature;
use plr_parallel::RowTask;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Opaque handle to a tenant registered with a
/// [`ServiceCore`](crate::ServiceCore), returned by
/// [`add_tenant`](crate::ServiceCore::add_tenant). Only valid for the
/// core that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(pub(crate) usize);

impl TenantId {
    /// The tenant's dense index in registration order (also its index in
    /// [`ServiceStats::tenants`](crate::ServiceStats)).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Declarative tenant configuration: who they are, what recurrence they
/// run, how much of the service they are entitled to.
#[derive(Debug, Clone)]
pub struct TenantSpec<T> {
    /// Display name (reported back in [`crate::TenantStats`]).
    pub name: String,
    /// Fair-queueing weight: a backlogged weight-4 tenant is served 4x
    /// the work of a backlogged weight-1 tenant. Clamped to at least 1.
    pub weight: u32,
    /// Token-bucket quota as `(rows_per_second, burst)`; `None` leaves
    /// the tenant unmetered (still subject to fair queueing and
    /// shedding).
    pub quota: Option<(f64, f64)>,
    /// The tenant's recurrence. Heterogeneous signatures across tenants
    /// are the point: each tenant's rows run its own plan, served
    /// through the engine's shared plan cache.
    pub signature: Signature<T>,
}

impl<T> TenantSpec<T> {
    /// A weight-1, unmetered tenant running `signature`.
    pub fn new(name: impl Into<String>, signature: Signature<T>) -> Self {
        TenantSpec {
            name: name.into(),
            weight: 1,
            quota: None,
            signature,
        }
    }

    /// Sets the fair-queueing weight (clamped to at least 1).
    #[must_use]
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Sets the token-bucket quota: `rate` rows/second, `burst` rows of
    /// saved-up credit.
    #[must_use]
    pub fn with_quota(mut self, rate: f64, burst: f64) -> Self {
        self.quota = Some((rate, burst));
        self
    }
}

/// Lock-free per-tenant outcome counters (all monotonic).
#[derive(Debug, Default)]
pub(crate) struct TenantCounters {
    pub submitted: AtomicU64,
    pub admitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub shed_quota: AtomicU64,
    pub shed_overload: AtomicU64,
    /// Wall nanoseconds spent actually solving this tenant's rows
    /// (completed rows only) — the numerator of goodput.
    pub service_nanos: AtomicU64,
    /// Elements in successfully completed rows — goodput in work units,
    /// which is what the weights are defined over.
    pub completed_elems: AtomicU64,
}

impl TenantCounters {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// One registered tenant's live state.
pub(crate) struct TenantRuntime<T> {
    pub name: String,
    pub weight: u32,
    /// The tenant's per-row work unit — the same `RowTask` the batch and
    /// streaming layers execute, so a service row cannot drift from its
    /// single-tenant counterpart.
    pub task: RowTask<T>,
    /// Whether this tenant's plan was served from the shared plan cache
    /// (per-tenant hit/miss attribution of the cross-tenant cache).
    pub plan_cache_hit: bool,
    pub bucket: Mutex<TokenBucket>,
    pub counters: TenantCounters,
}

impl<T: Element> TenantRuntime<T> {
    pub fn new(spec: TenantSpec<T>) -> Self {
        let task = RowTask::new(&spec.signature);
        let plan_cache_hit = task.cache_hit();
        TenantRuntime {
            name: spec.name,
            weight: spec.weight.max(1),
            task,
            plan_cache_hit,
            bucket: Mutex::new(match spec.quota {
                Some((rate, burst)) => TokenBucket::new(rate, burst),
                None => TokenBucket::unlimited(),
            }),
            counters: TenantCounters::default(),
        }
    }
}

/// Point-in-time snapshot of one tenant's accounting, from
/// [`ServiceCore::stats`](crate::ServiceCore::stats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant display name.
    pub name: String,
    /// Fair-queueing weight.
    pub weight: u32,
    /// Rows offered to [`submit`](crate::ServiceCore::submit).
    pub submitted: u64,
    /// Rows that passed admission (enqueued or executed inline).
    pub admitted: u64,
    /// Admitted rows that completed successfully.
    pub completed: u64,
    /// Admitted rows that failed (panic, cancel, deadline).
    pub failed: u64,
    /// Rows rejected with `QuotaExceeded` at admission.
    pub shed_quota: u64,
    /// Rows rejected with `Overloaded` at admission.
    pub shed_overload: u64,
    /// Wall nanoseconds spent solving this tenant's completed rows.
    pub service_nanos: u64,
    /// Elements across this tenant's completed rows (goodput numerator).
    pub completed_elems: u64,
    /// Whether the tenant's plan was a shared-plan-cache hit when the
    /// tenant registered.
    pub plan_cache_hit: bool,
}

impl<T> TenantRuntime<T> {
    pub fn snapshot(&self) -> TenantStats {
        let c = &self.counters;
        TenantStats {
            name: self.name.clone(),
            weight: self.weight,
            submitted: c.submitted.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            shed_quota: c.shed_quota.load(Ordering::Relaxed),
            shed_overload: c.shed_overload.load(Ordering::Relaxed),
            service_nanos: c.service_nanos.load(Ordering::Relaxed),
            completed_elems: c.completed_elems.load(Ordering::Relaxed),
            plan_cache_hit: self.plan_cache_hit,
        }
    }
}
