//! Weighted-fair queueing across tenants (virtual-time WFQ).
//!
//! Classic start-time/finish-tag fair queueing: each tenant keeps a FIFO
//! of its own items; an arriving item with cost `c` is stamped with the
//! finish tag `F = max(V, F_last) + c / w`, where `V` is the queue's
//! global virtual time, `F_last` the tenant's previous finish tag, and
//! `w` the tenant's weight. [`Wfq::pop`] always serves the smallest
//! pending finish tag and advances `V` to it.
//!
//! The property this buys (and the one the service's fairness proptest
//! pins down): over any interval in which a set of tenants stays
//! continuously backlogged, the work served to tenant *i* is proportional
//! to `w_i` within one maximum item cost per tenant — no arrival
//! interleaving can starve a backlogged tenant, and an idle tenant's
//! unused share is redistributed instead of banked (`max(V, F_last)`
//! forbids saving up credit while idle).

use std::collections::VecDeque;

/// One tenant's FIFO within the fair queue.
#[derive(Debug)]
struct TenantQueue<J> {
    weight: f64,
    last_finish: f64,
    items: VecDeque<(f64, J)>,
}

/// A virtual-time weighted-fair queue over per-tenant FIFOs, indexed by
/// dense tenant ids.
#[derive(Debug)]
pub struct Wfq<J> {
    queues: Vec<TenantQueue<J>>,
    vtime: f64,
    len: usize,
}

impl<J> Default for Wfq<J> {
    fn default() -> Self {
        Self::new()
    }
}

impl<J> Wfq<J> {
    /// An empty queue with no tenants registered yet.
    pub fn new() -> Self {
        Wfq {
            queues: Vec::new(),
            vtime: 0.0,
            len: 0,
        }
    }

    fn ensure(&mut self, tenant: usize, weight: u32) {
        while self.queues.len() <= tenant {
            self.queues.push(TenantQueue {
                weight: 1.0,
                last_finish: 0.0,
                items: VecDeque::new(),
            });
        }
        self.queues[tenant].weight = f64::from(weight.max(1));
    }

    /// Enqueues `item` for `tenant` with the given service cost (any
    /// positive work measure — the service uses row length). `weight` is
    /// the tenant's current share weight; passing it on every push keeps
    /// the queue oblivious to tenant registration order and lets weight
    /// changes take effect on the next arrival.
    pub fn push(&mut self, tenant: usize, weight: u32, cost: f64, item: J) {
        self.ensure(tenant, weight);
        let q = &mut self.queues[tenant];
        let start = self.vtime.max(q.last_finish);
        q.last_finish = start + cost.max(1.0) / q.weight;
        q.items.push_back((q.last_finish, item));
        self.len += 1;
    }

    /// Serves the pending item with the smallest finish tag (ties broken
    /// by lower tenant id) and advances virtual time to it.
    pub fn pop(&mut self) -> Option<(usize, J)> {
        let tenant = self
            .queues
            .iter()
            .enumerate()
            .filter_map(|(i, q)| q.items.front().map(|(f, _)| (i, *f)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))?
            .0;
        let (finish, item) = self.queues[tenant].items.pop_front().expect("head exists");
        self.vtime = self.vtime.max(finish);
        self.len -= 1;
        Some((tenant, item))
    }

    /// Total items pending across every tenant.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Items pending for one tenant (0 for unregistered ids).
    pub fn backlog(&self, tenant: usize) -> usize {
        self.queues.get(tenant).map_or(0, |q| q.items.len())
    }

    /// Sum of the weights of tenants with at least one pending item —
    /// the denominator of the instantaneous fair share.
    pub fn active_weight(&self) -> f64 {
        self.queues
            .iter()
            .filter(|q| !q.items.is_empty())
            .map(|q| q.weight)
            .sum()
    }

    /// Registered weight of one tenant (1.0 for unregistered ids).
    pub fn weight(&self, tenant: usize) -> f64 {
        self.queues.get(tenant).map_or(1.0, |q| q.weight)
    }

    /// Removes and returns every pending item, queue order preserved per
    /// tenant (used when a shard drains on shutdown or degradation).
    pub fn drain(&mut self) -> Vec<(usize, J)> {
        let mut out = Vec::with_capacity(self.len);
        for (i, q) in self.queues.iter_mut().enumerate() {
            out.extend(q.items.drain(..).map(|(_, item)| (i, item)));
        }
        self.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_backlogged_tenants_proportionally_to_weight() {
        let mut q = Wfq::new();
        // Tenant 0 at weight 3, tenant 1 at weight 1, equal unit costs.
        for _ in 0..400 {
            q.push(0, 3, 1.0, ());
            q.push(1, 1, 1.0, ());
        }
        let mut served = [0u32; 2];
        for _ in 0..200 {
            let (t, ()) = q.pop().unwrap();
            served[t] += 1;
        }
        // While both stay backlogged, shares track 3:1 within one item.
        assert!((148..=152).contains(&served[0]), "{served:?}");
        assert!((48..=52).contains(&served[1]), "{served:?}");
    }

    #[test]
    fn idle_tenants_cannot_bank_credit() {
        let mut q = Wfq::new();
        for _ in 0..100 {
            q.push(0, 1, 1.0, ());
        }
        for _ in 0..100 {
            q.pop().unwrap();
        }
        // Tenant 1 arrives only now; its start tag snaps to the current
        // virtual time, so it does not get 100 items of back-pay.
        for _ in 0..10 {
            q.push(0, 1, 1.0, ());
            q.push(1, 1, 1.0, ());
        }
        let mut served = [0u32; 2];
        for _ in 0..10 {
            let (t, ()) = q.pop().unwrap();
            served[t] += 1;
        }
        assert_eq!(
            served,
            [5, 5],
            "late arrival competes at parity, not with banked credit"
        );
    }

    #[test]
    fn cost_weighting_uses_work_not_item_count() {
        let mut q = Wfq::new();
        // Equal weights, but tenant 0's items are 4x the cost: it should
        // get ~1/4 the item throughput.
        for _ in 0..100 {
            q.push(0, 1, 4.0, ());
            q.push(1, 1, 1.0, ());
        }
        let mut served = [0u32; 2];
        for _ in 0..50 {
            let (t, ()) = q.pop().unwrap();
            served[t] += 1;
        }
        assert!(served[1] >= 3 * served[0], "{served:?}");
    }

    #[test]
    fn drain_returns_everything_and_empties() {
        let mut q = Wfq::new();
        q.push(0, 1, 1.0, 'a');
        q.push(2, 5, 1.0, 'b');
        q.push(0, 1, 1.0, 'c');
        assert_eq!(q.len(), 3);
        assert_eq!(q.backlog(0), 2);
        assert_eq!(q.active_weight(), 6.0);
        let mut drained = q.drain();
        drained.sort();
        assert_eq!(drained, vec![(0, 'a'), (0, 'c'), (2, 'b')]);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
