//! The multi-tenant service core: tenant registry, admission control, and
//! the sharded execution fabric behind it.

use crate::handle::{HandleInner, ServiceHandle};
use crate::lock_recover;
use crate::shard::{Shard, ShardStats};
use crate::tenant::{TenantCounters, TenantId, TenantRuntime, TenantSpec, TenantStats};
use plr_core::element::Element;
use plr_core::error::EngineError;
use plr_parallel::{resolve_threads, CancelToken, RunControl};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Sizing knobs for a [`ServiceCore`]. `0` means "pick a sane default"
/// for every field.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceConfig {
    /// Number of independent shards (worker pools). Each admitted row
    /// lands on exactly one shard; more shards mean less queue contention
    /// and smaller blast radius for a degraded pool, fewer mean better
    /// packing. `0` → 2.
    pub shards: usize,
    /// Worker threads per shard (the shard's drain run claims them all).
    /// `0` → the machine's available parallelism divided across shards.
    pub threads_per_shard: usize,
    /// Hard cap on rows queued per shard — the knee of the load-shedding
    /// curve. Weighted per-tenant caps engage at half this depth. `0` →
    /// 256.
    pub max_queue: usize,
}

impl ServiceConfig {
    fn shards_or_default(&self) -> usize {
        if self.shards == 0 {
            2
        } else {
            self.shards
        }
    }

    fn width_or_default(&self, shards: usize) -> usize {
        if self.threads_per_shard == 0 {
            (resolve_threads(0) / shards).max(1)
        } else {
            self.threads_per_shard
        }
    }

    fn max_queue_or_default(&self) -> usize {
        if self.max_queue == 0 {
            256
        } else {
            self.max_queue.max(2)
        }
    }
}

/// Per-row submission options (all optional).
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Wall-clock budget for the row, measured **from admission** — queue
    /// time counts, exactly like the streaming layer. Admission refuses
    /// rows whose estimated queue delay already exceeds the budget
    /// (better to shed at the door than to admit a row that will miss).
    pub deadline: Option<Duration>,
    /// Caller-held cancel token for the row; a fresh private token is
    /// minted when absent (reachable via [`ServiceHandle::cancel`]).
    pub cancel: Option<CancelToken>,
}

impl SubmitOptions {
    /// Options with a deadline budget and nothing else.
    pub fn deadline(budget: Duration) -> Self {
        SubmitOptions {
            deadline: Some(budget),
            ..Default::default()
        }
    }
}

/// Point-in-time service accounting from [`ServiceCore::stats`]: one
/// entry per registered tenant (in [`TenantId::index`] order) and one per
/// shard.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Per-tenant admission/outcome counters.
    pub tenants: Vec<TenantStats>,
    /// Per-shard queue depth, service-time estimate, and health.
    pub shards: Vec<ShardStats>,
}

/// A multi-tenant front end over the recurrence engine: registered
/// tenants submit rows of *their* recurrence and get per-row handles
/// back, while the core enforces quotas, weighted fair shares, and
/// admission-time load shedding across a set of worker-pool shards.
///
/// ```
/// use plr_service::{ServiceConfig, ServiceCore, SubmitOptions, TenantSpec};
///
/// let core = ServiceCore::new(ServiceConfig::default());
/// let acme = core.add_tenant(TenantSpec::new("acme", "(1: 1)".parse()?).with_weight(4));
/// let handle = core.submit(acme, vec![1i64, 2, 3, 4], SubmitOptions::default())?;
/// let (data, result) = handle.join();
/// result?;
/// assert_eq!(data, vec![1, 3, 6, 10]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ServiceCore<T: Element> {
    config: ServiceConfig,
    tenants: RwLock<Vec<Arc<TenantRuntime<T>>>>,
    shards: Vec<Shard<T>>,
    closed: AtomicBool,
}

impl<T: Element> ServiceCore<T> {
    /// Builds the core and spins up its shards (worker threads spawn
    /// lazily on first submission, so an idle core is cheap).
    pub fn new(config: ServiceConfig) -> Self {
        let n = config.shards_or_default();
        let width = config.width_or_default(n);
        ServiceCore {
            config,
            tenants: RwLock::new(Vec::new()),
            shards: (0..n).map(|_| Shard::new(width)).collect(),
            closed: AtomicBool::new(false),
        }
    }

    /// Registers a tenant and returns its id. Plans are built (or served
    /// from the shared plan cache) here, once, not per row.
    pub fn add_tenant(&self, spec: TenantSpec<T>) -> TenantId {
        let mut tenants = self.tenants.write().unwrap_or_else(PoisonError::into_inner);
        tenants.push(Arc::new(TenantRuntime::new(spec)));
        TenantId(tenants.len() - 1)
    }

    fn runtime(&self, tenant: TenantId) -> Arc<TenantRuntime<T>> {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(tenant.0)
            .cloned()
            .expect("TenantId not issued by this ServiceCore")
    }

    /// Offers one row for `tenant`. On admission the row is queued (or,
    /// on a degraded shard, executed inline) and a [`ServiceHandle`]
    /// tracks it; the handle does not need to be kept for the row to run.
    ///
    /// Rejection is immediate and cheap, in precedence order:
    ///
    /// 1. [`EngineError::Cancelled`] — the core is shut down;
    /// 2. [`EngineError::QuotaExceeded`] — the tenant's token bucket is
    ///    empty (the hint says when it refills);
    /// 3. [`EngineError::Overloaded`] — the chosen shard's queue is at
    ///    its hard cap, the tenant is past its weighted share of a
    ///    half-full queue, or the estimated queue delay already exceeds
    ///    half the row's deadline budget (the other half is reserved for
    ///    the solve itself and for estimate error).
    ///
    /// Both rejection errors are [`EngineError::is_retryable`]; pair them
    /// with [`plr_parallel::retry_with_backoff`]. The input buffer is
    /// consumed either way — clone it first if you intend to retry.
    ///
    /// # Panics
    ///
    /// If `tenant` was not issued by this core's
    /// [`add_tenant`](Self::add_tenant).
    pub fn submit(
        &self,
        tenant: TenantId,
        data: Vec<T>,
        opts: SubmitOptions,
    ) -> Result<ServiceHandle<T>, EngineError> {
        let runtime = self.runtime(tenant);
        TenantCounters::bump(&runtime.counters.submitted);
        if self.closed.load(Ordering::Acquire) {
            return Err(EngineError::Cancelled);
        }
        if let Err(wait) = lock_recover(&runtime.bucket).try_take(1.0, Instant::now()) {
            TenantCounters::bump(&runtime.counters.shed_quota);
            return Err(EngineError::QuotaExceeded {
                retry_after_hint: wait.max(Duration::from_micros(100)),
            });
        }
        let shard = self
            .shards
            .iter()
            .min_by_key(|s| s.est_delay_ns())
            .expect("at least one shard");
        let token = opts.cancel.unwrap_or_default();
        let mut ctl = RunControl::new().with_cancel(&token);
        if let Some(budget) = opts.deadline {
            ctl = ctl.with_deadline(budget);
        }
        let inner = Arc::new(HandleInner::new());
        match shard.admit(
            tenant.0,
            &runtime,
            data,
            ctl,
            opts.deadline,
            &inner,
            self.config.max_queue_or_default(),
        ) {
            Ok(()) => {
                TenantCounters::bump(&runtime.counters.admitted);
                Ok(ServiceHandle::new(inner, token, tenant))
            }
            Err(e) => {
                TenantCounters::bump(&runtime.counters.shed_overload);
                Err(e)
            }
        }
    }

    /// Snapshot of every tenant's and every shard's accounting.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            tenants: self
                .tenants
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|t| t.snapshot())
                .collect(),
            shards: self.shards.iter().map(Shard::stats).collect(),
        }
    }

    /// Graceful shutdown: stop admitting, let every already-admitted row
    /// finish, then stop the shard runs. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.closed.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.close();
        }
        for shard in &self.shards {
            shard.join();
        }
    }

    /// Hard shutdown: stop admitting and cancel everything in flight
    /// (queued and mid-solve rows resolve [`EngineError::Cancelled`]).
    pub fn abort(&self) {
        self.closed.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.close();
            shard.abort();
        }
        for shard in &self.shards {
            shard.join();
        }
    }
}

impl<T: Element> Drop for ServiceCore<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<T: Element> std::fmt::Debug for ServiceCore<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceCore")
            .field("config", &self.config)
            .field(
                "tenants",
                &self
                    .tenants
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len(),
            )
            .field("shards", &self.shards.len())
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .finish()
    }
}
