//! # plr-service
//!
//! A multi-tenant service core over the recurrence engine: tenants
//! register their signature once, then submit rows and get per-row
//! handles back, while the core keeps the machine healthy under overload.
//!
//! The execution fabric is a set of **shards**, each a private
//! [`plr_parallel::WorkerPool`] running the same per-row work unit
//! ([`plr_parallel::RowTask`]) as the batch and streaming layers — the
//! service changes *which rows run when*, never *how a row runs*.
//!
//! What sits between `submit` and a worker:
//!
//! - **Token-bucket quotas** ([`TokenBucket`]): a per-tenant
//!   rows-per-second rate with burst credit, checked first. Rejection is
//!   [`EngineError::QuotaExceeded`](plr_core::error::EngineError) with a
//!   refill hint.
//! - **Weighted fair queueing** ([`Wfq`]): each shard serves backlogged
//!   tenants in proportion to their weights (virtual-time fair queueing
//!   over row cost), so a flooding tenant cannot starve a light one —
//!   isolation by scheduling, not by partitioning.
//! - **Admission-time load shedding**: each shard tracks an EWMA of row
//!   service time; when the queue passes its cap, a tenant exceeds its
//!   weighted share of a half-full queue, or the estimated queue delay
//!   already exceeds a row's deadline budget, the row is rejected *at
//!   the door* with
//!   [`EngineError::Overloaded`](plr_core::error::EngineError) and a
//!   retry hint — shedding the cheap way (before any work) instead of
//!   the expensive way (timing out after queueing). Both rejection
//!   errors are retryable; pair them with
//!   [`plr_parallel::retry_with_backoff`].
//! - **Graceful degradation**: a shard whose run keeps dying to worker
//!   faults relaunches it a bounded number of times between observed
//!   progress, then falls back to executing admitted rows serially on
//!   the submitter's thread — reduced throughput, never a black hole.
//!
//! ```
//! use plr_service::{ServiceConfig, ServiceCore, SubmitOptions, TenantSpec};
//! use std::time::Duration;
//!
//! let core = ServiceCore::new(ServiceConfig::default());
//! // Two tenants, different recurrences, 4:1 service weights; "free"
//! // additionally capped at 100 rows/s with burst 10.
//! let paid = core.add_tenant(TenantSpec::new("paid", "(1: 1)".parse()?).with_weight(4));
//! let free = core.add_tenant(
//!     TenantSpec::new("free", "(1: 1, 1)".parse()?)
//!         .with_weight(1)
//!         .with_quota(100.0, 10.0),
//! );
//!
//! let h = core.submit(paid, vec![1i64; 1024], SubmitOptions::default())?;
//! let fib = core.submit(free, vec![1i64; 32], SubmitOptions::deadline(Duration::from_secs(5)))?;
//! h.wait()?;
//! fib.wait()?;
//! core.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod core;
mod handle;
mod quota;
mod shard;
mod tenant;
mod wfq;

pub use crate::core::{ServiceConfig, ServiceCore, ServiceStats, SubmitOptions};
pub use handle::ServiceHandle;
pub use quota::TokenBucket;
pub use shard::ShardStats;
pub use tenant::{TenantId, TenantSpec, TenantStats};
pub use wfq::Wfq;

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering the guard if a previous holder panicked —
/// the service layer's invariants all tolerate a partially-updated
/// protected section (queues and counters are re-validated by readers).
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
