//! Per-tenant token-bucket quotas.
//!
//! A bucket accrues `rate` tokens per second up to `burst`; admitting one
//! row costs one token. The bucket never sleeps and never reads the clock
//! itself — the caller passes `now`, which keeps quota decisions
//! deterministic under test (drive time by hand) and free of hidden
//! syscalls on the admission path.

use std::time::{Duration, Instant};

/// Longest `retry_after` hint a drained bucket will suggest. A tenant
/// whose configured rate implies a multi-hour wait is effectively shut
/// off; an absurd hint would only overflow downstream arithmetic.
const MAX_HINT: Duration = Duration::from_secs(3600);

/// A token bucket (rows-per-second rate, bucket-depth burst).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Tokens per second; `None` disables the quota entirely.
    rate: Option<f64>,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket enforcing `rate` rows/second with up to `burst` rows of
    /// saved-up credit. A non-finite or non-positive `rate` means
    /// *unlimited* (see [`unlimited`](Self::unlimited)); `burst` is
    /// clamped to at least one row so a legitimate rate can ever admit.
    pub fn new(rate: f64, burst: f64) -> Self {
        let rate = (rate.is_finite() && rate > 0.0).then_some(rate);
        let burst = if burst.is_finite() {
            burst.max(1.0)
        } else {
            1.0
        };
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: Instant::now(),
        }
    }

    /// A bucket that always admits.
    pub fn unlimited() -> Self {
        TokenBucket {
            rate: None,
            burst: 1.0,
            tokens: 1.0,
            last: Instant::now(),
        }
    }

    /// Whether this bucket enforces anything at all.
    pub fn is_limited(&self) -> bool {
        self.rate.is_some()
    }

    /// Takes `cost` tokens at time `now`, or reports how long until the
    /// bucket will have accrued them (the `retry_after` hint, capped at
    /// one hour). `now` values older than the last refill are treated as
    /// "no time has passed".
    pub fn try_take(&mut self, cost: f64, now: Instant) -> Result<(), Duration> {
        let Some(rate) = self.rate else {
            return Ok(());
        };
        let elapsed = now.saturating_duration_since(self.last);
        self.last = self.last.max(now);
        self.tokens = (self.tokens + elapsed.as_secs_f64() * rate).min(self.burst);
        if self.tokens >= cost {
            self.tokens -= cost;
            return Ok(());
        }
        let wait = (cost - self.tokens) / rate;
        Err(Duration::from_secs_f64(wait).min(MAX_HINT))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_admits_then_rate_limits() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, 3.0);
        for _ in 0..3 {
            assert!(b.try_take(1.0, t0).is_ok(), "burst credit must admit");
        }
        let hint = b.try_take(1.0, t0).expect_err("burst exhausted");
        // One token at 10 rows/s accrues in 100 ms.
        assert!(hint <= Duration::from_millis(101), "{hint:?}");
        assert!(hint >= Duration::from_millis(90), "{hint:?}");
        // After waiting out the hint the take succeeds.
        assert!(b
            .try_take(1.0, t0 + hint + Duration::from_millis(1))
            .is_ok());
    }

    #[test]
    fn refill_is_capped_at_burst() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(100.0, 2.0);
        // A long idle period must not bank more than `burst` rows.
        let later = t0 + Duration::from_secs(60);
        assert!(b.try_take(1.0, later).is_ok());
        assert!(b.try_take(1.0, later).is_ok());
        assert!(b.try_take(1.0, later).is_err(), "only burst-many banked");
    }

    #[test]
    fn unlimited_always_admits() {
        let mut b = TokenBucket::unlimited();
        assert!(!b.is_limited());
        let now = Instant::now();
        for _ in 0..10_000 {
            assert!(b.try_take(1.0, now).is_ok());
        }
        for bad_rate in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(!TokenBucket::new(bad_rate, 5.0).is_limited());
        }
    }

    #[test]
    fn time_never_runs_backwards() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(1.0, 1.0);
        assert!(b.try_take(1.0, t0 + Duration::from_secs(5)).is_ok());
        // An older timestamp must not panic or mint negative credit.
        assert!(b.try_take(1.0, t0).is_err());
    }
}
