//! Per-row completion handles for admitted service rows.

use crate::tenant::TenantId;
use plr_core::error::EngineError;
use plr_parallel::{CancelToken, RunStats};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// `(solved buffer, outcome)` once the row is done.
type Outcome<T> = (Vec<T>, Result<RunStats, EngineError>);

/// Shared completion cell between a [`ServiceHandle`] and the shard
/// worker solving its row — the service-layer analogue of the streaming
/// layer's `RowInner`.
pub(crate) struct HandleInner<T> {
    state: Mutex<Option<Outcome<T>>>,
    done: Condvar,
}

impl<T> HandleInner<T> {
    pub fn new() -> Self {
        HandleInner {
            state: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Resolves the cell; first completion wins, later calls are ignored
    /// (a row cancelled concurrently with finishing keeps whichever
    /// outcome landed first, like every other first-trip-wins surface in
    /// the execution layer).
    pub fn complete(inner: &Arc<Self>, data: Vec<T>, result: Result<RunStats, EngineError>) {
        let mut state = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.is_none() {
            *state = Some((data, result));
            inner.done.notify_all();
        }
    }
}

/// Handle to one admitted row: wait on it, join it for the solved buffer,
/// or cancel it.
///
/// Unlike a streaming [`RowHandle`](plr_parallel::RowHandle), dropping a
/// `ServiceHandle` does **not** cancel the row — an admitted row is the
/// service's obligation (it was charged against the tenant's quota and
/// queue share), so fire-and-forget submission is the default and
/// cancellation is always explicit.
pub struct ServiceHandle<T> {
    inner: Arc<HandleInner<T>>,
    cancel: CancelToken,
    tenant: TenantId,
}

impl<T> std::fmt::Debug for ServiceHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("tenant", &self.tenant)
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl<T> ServiceHandle<T> {
    pub(crate) fn new(inner: Arc<HandleInner<T>>, cancel: CancelToken, tenant: TenantId) -> Self {
        ServiceHandle {
            inner,
            cancel,
            tenant,
        }
    }

    /// The tenant this row was admitted for.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Whether the row has resolved (successfully or not).
    pub fn is_finished(&self) -> bool {
        self.inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Requests cancellation of this row (idempotent). A row still queued
    /// resolves to [`EngineError::Cancelled`] without running; a row
    /// mid-solve is interrupted at its next abort poll.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until the row resolves and returns its outcome (stats on
    /// success, the row's error otherwise). The solved buffer stays in
    /// the handle — retrieve it with [`join`](Self::join).
    pub fn wait(&self) -> Result<RunStats, EngineError> {
        let mut state = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some((_, result)) = state.as_ref() {
                return result.clone();
            }
            state = self
                .inner
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`wait`](Self::wait) with a bound: `None` if the row is still
    /// unresolved after `budget`.
    pub fn wait_timeout(&self, budget: Duration) -> Option<Result<RunStats, EngineError>> {
        let deadline = Instant::now() + budget;
        let mut state = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some((_, result)) = state.as_ref() {
                return Some(result.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            state = self
                .inner
                .done
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Blocks until the row resolves, then returns the buffer (solved on
    /// success, untouched or partially solved on failure) and the
    /// outcome.
    pub fn join(self) -> (Vec<T>, Result<RunStats, EngineError>) {
        let mut state = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some((data, result)) = state.take() {
                return (data, result);
            }
            state = self
                .inner
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}
