//! Fault-injection isolation properties for the service core (require
//! `--features fault-inject`).
//!
//! The contract under test: a fault in one tenant's row — an injected
//! panic or a simulated worker-thread death — fails *that row's handle
//! only*. Every other tenant's admitted rows complete and validate, the
//! shard relaunches its drain run if the fault killed it, and the core
//! keeps serving afterwards. No fault may stall (hang) or shed
//! (retroactively reject) rows that were already admitted.
#![cfg(feature = "fault-inject")]

use plr_core::error::EngineError;
use plr_core::serial;
use plr_core::signature::Signature;
use plr_parallel::fault::{self, FaultPlan, FaultSite};
use plr_service::{ServiceConfig, ServiceCore, SubmitOptions, TenantSpec};
use proptest::prelude::*;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// The fault plan is process-global: tests must not interleave arming.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Silences the default panic-hook output for panics this suite injects
/// on purpose; everything else still prints.
fn quiet_injected_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let s = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            if !s.contains("injected fault") && !payload.is::<plr_parallel::pool::WorkerExit>() {
                default(info);
            }
        }));
    });
}

/// Runs `f` on a helper thread, panicking if it does not finish within
/// `secs` — turns "a fault stalled another tenant" into a test failure
/// instead of a stuck CI job.
fn watchdog<R: Send + 'static>(secs: u64, f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(r) => {
            let _ = worker.join();
            r
        }
        Err(_) => panic!("watchdog: service did not quiesce within {secs}s (hang)"),
    }
}

fn threads() -> usize {
    std::env::var("PLR_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2)
}

fn input(n: usize, salt: usize) -> Vec<i64> {
    (0..n)
        .map(|i| ((i * 31 + salt * 7) % 23) as i64 - 11)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// Inject a fault (plain panic or simulated thread death) into
    /// tenant A's first row while tenant B has `b_rows` rows admitted
    /// behind it. A's row must fail with `WorkerPanicked`; every one of
    /// B's rows must complete and validate against the serial reference;
    /// and the core must still serve a fresh fault-free row for A
    /// afterwards.
    #[test]
    fn a_faulted_tenant_row_never_stalls_or_sheds_another_tenants_rows(
        b_rows in 4usize..20,
        kill_thread in 0usize..2,
    ) {
        let _serial = serialize();
        quiet_injected_panics();
        fault::disarm();

        let sig_a: Signature<i64> = "1:1".parse().unwrap();
        let sig_b: Signature<i64> = "(1: 1, 1)".parse().unwrap();
        let core = ServiceCore::new(ServiceConfig {
            shards: 1,
            threads_per_shard: threads(),
            max_queue: 256,
        });
        let a = core.add_tenant(TenantSpec::new("a", sig_a.clone()));
        let b = core.add_tenant(TenantSpec::new("b", sig_b.clone()).with_weight(2));

        // Row index 0 on the (only) shard is A's first row; the plan
        // fires exactly there.
        let plan = if kill_thread == 1 {
            FaultPlan::exit_at_chunk(FaultSite::Row, 0)
        } else {
            FaultPlan::panic_at_chunk(FaultSite::Row, 0)
        };
        fault::arm(plan);

        let doomed = core
            .submit(a, input(4096, 99), SubmitOptions::default())
            .expect("unloaded core must admit");
        let mut expected = Vec::new();
        let mut handles = Vec::new();
        for r in 0..b_rows {
            let data = input(1024 + 32 * r, r);
            expected.push(serial::run(&sig_b, &data));
            handles.push(
                core.submit(b, data, SubmitOptions::default())
                    .expect("a neighbor's fault must not shed admitted tenants"),
            );
        }

        let (doomed_result, b_results) = watchdog(60, move || {
            let d = doomed.wait();
            let bs: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            (d, bs)
        });

        let err = doomed_result.expect_err("the faulted row must fail");
        prop_assert!(
            matches!(err, EngineError::WorkerPanicked { .. }),
            "faulted row must surface WorkerPanicked, got {:?}", err
        );
        for ((data, result), expect) in b_results.into_iter().zip(expected) {
            prop_assert!(result.is_ok(), "B row failed: {:?}", result);
            prop_assert_eq!(&data, &expect, "B row must validate");
        }

        // The core keeps serving: a fresh fault-free row for the same
        // tenant completes.
        fault::disarm();
        let again = core
            .submit(a, input(512, 5), SubmitOptions::default())
            .expect("core must keep admitting after a fault");
        prop_assert!(watchdog(60, move || again.wait()).is_ok());

        let stats = core.stats();
        prop_assert_eq!(stats.tenants[a.index()].failed, 1);
        prop_assert_eq!(stats.tenants[b.index()].failed, 0);
        prop_assert_eq!(stats.tenants[b.index()].completed, b_rows as u64);
        if kill_thread == 1 {
            // Thread death ends the drain run; the shard must have
            // relaunched it rather than going dark.
            prop_assert!(
                stats.shards[0].relaunches >= 1,
                "worker death must trigger a relaunch, stats: {:?}", stats.shards
            );
        }
        core.shutdown();
    }
}
