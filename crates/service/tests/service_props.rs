//! Service-core properties: weighted-fair-queueing share bounds over
//! arbitrary arrival interleavings, end-to-end multi-tenant correctness
//! against the serial reference, quota and overload rejection behavior,
//! and shutdown liveness.

use plr_core::error::EngineError;
use plr_core::serial;
use plr_core::signature::Signature;
use plr_service::{ServiceConfig, ServiceCore, SubmitOptions, TenantSpec, Wfq};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]
    /// The classic WFQ service bound: over any interval in which tenants
    /// `i` and `j` are both continuously backlogged, their normalized
    /// service (work / weight) differs by at most one maximum item cost
    /// per tenant: `|W_i/w_i - W_j/w_j| <= L_max/w_i + L_max/w_j`.
    ///
    /// The proptest drives the queue with an *arbitrary* arrival
    /// interleaving (tenant order, item costs, weights all generated),
    /// then serves while every tenant remains backlogged and checks the
    /// bound on every prefix of the service order — no interleaving may
    /// let one tenant run ahead of its share.
    #[test]
    fn wfq_share_deviation_is_bounded_over_any_interleaving(
        weights in proptest::collection::vec(1u32..6, 2..4),
        arrivals in proptest::collection::vec((0usize..4, 1u32..9), 24..160),
    ) {
        let tenants = weights.len();
        let mut q = Wfq::new();
        let mut queued_cost = vec![0.0f64; tenants];
        let mut max_cost = 1.0f64;
        for &(t, c) in &arrivals {
            let t = t % tenants;
            let cost = f64::from(c);
            q.push(t, weights[t], cost, cost);
            queued_cost[t] += cost;
            max_cost = max_cost.max(cost);
        }
        prop_assume!(queued_cost.iter().all(|&c| c > 0.0));

        // Serve while *all* tenants stay backlogged (the bound only
        // applies to continuously-backlogged sets).
        let mut served = vec![0.0f64; tenants];
        let mut remaining = queued_cost.clone();
        while remaining.iter().all(|&c| c > 0.0) {
            let (t, cost) = q.pop().expect("backlogged queue");
            served[t] += cost;
            remaining[t] -= cost;
            for i in 0..tenants {
                for j in (i + 1)..tenants {
                    let wi = f64::from(weights[i]);
                    let wj = f64::from(weights[j]);
                    let dev = (served[i] / wi - served[j] / wj).abs();
                    let bound = max_cost / wi + max_cost / wj;
                    prop_assert!(
                        dev <= bound + 1e-9,
                        "share deviation {dev} exceeds bound {bound} \
                         (weights {weights:?}, served {served:?})"
                    );
                }
            }
        }
    }
}

/// Worker count for the suite: the `PLR_THREADS` CI matrix leg when set,
/// otherwise 2 per shard.
fn threads() -> usize {
    std::env::var("PLR_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2)
}

fn input(n: usize, salt: usize) -> Vec<i64> {
    (0..n)
        .map(|i| ((i * 29 + salt * 13) % 19) as i64 - 9)
        .collect()
}

/// Three tenants with *different* recurrences interleave rows through a
/// two-shard core; every row's output must match the serial reference
/// for its tenant's signature — multi-tenancy changes scheduling, never
/// results.
#[test]
fn heterogeneous_tenants_all_validate_against_serial() {
    let sigs: [Signature<i64>; 3] = [
        "1:1".parse().unwrap(),        // prefix sum
        "(1: 1, 1)".parse().unwrap(),  // Fibonacci-like
        "(1: 2, -1)".parse().unwrap(), // second difference
    ];
    let core = ServiceCore::new(ServiceConfig {
        shards: 2,
        threads_per_shard: threads(),
        max_queue: 0,
    });
    let ids: Vec<_> = sigs
        .iter()
        .enumerate()
        .map(|(i, sig)| {
            core.add_tenant(TenantSpec::new(format!("t{i}"), sig.clone()).with_weight(i as u32 + 1))
        })
        .collect();

    let mut handles = Vec::new();
    let mut expected = Vec::new();
    for round in 0..8 {
        for (t, sig) in sigs.iter().enumerate() {
            let data = input(512 + 64 * round + t, round * 3 + t);
            expected.push(serial::run(sig, &data));
            handles.push(
                core.submit(ids[t], data, SubmitOptions::default())
                    .expect("unloaded core must admit"),
            );
        }
    }
    for (handle, expect) in handles.into_iter().zip(expected) {
        let (data, result) = handle.join();
        result.expect("admitted row must complete");
        assert_eq!(data, expect, "service row must match serial reference");
    }

    let stats = core.stats();
    assert_eq!(stats.tenants.len(), 3);
    for t in &stats.tenants {
        assert_eq!(t.submitted, 8);
        assert_eq!(t.admitted, 8);
        assert_eq!(t.completed, 8);
        assert_eq!(t.failed + t.shed_quota + t.shed_overload, 0);
    }
    assert!(
        stats.shards.iter().map(|s| s.processed).sum::<u64>() >= 24,
        "{stats:?}"
    );
    core.shutdown();
}

/// A tenant with a token-bucket quota gets its burst admitted, then a
/// retryable `QuotaExceeded` with a refill hint; an unmetered tenant on
/// the same core is unaffected.
#[test]
fn quota_exhaustion_is_retryable_and_isolated() {
    let core = ServiceCore::new(ServiceConfig {
        shards: 1,
        threads_per_shard: threads(),
        max_queue: 0,
    });
    let sig: Signature<i64> = "1:1".parse().unwrap();
    // 1 row/s refill: the 3-row burst drains immediately in this loop.
    let metered = core.add_tenant(TenantSpec::new("metered", sig.clone()).with_quota(1.0, 3.0));
    let free = core.add_tenant(TenantSpec::new("free", sig));

    let mut admitted = 0;
    let mut rejected = None;
    for _ in 0..5 {
        match core.submit(metered, vec![1i64; 64], SubmitOptions::default()) {
            Ok(h) => {
                admitted += 1;
                h.wait().unwrap();
            }
            Err(e) => {
                rejected = Some(e);
                break;
            }
        }
    }
    assert_eq!(admitted, 3, "burst credit admits exactly burst rows");
    let err = rejected.expect("4th row must be rejected");
    assert!(matches!(err, EngineError::QuotaExceeded { .. }), "{err:?}");
    assert!(err.is_retryable());
    let hint = err.retry_after_hint().expect("quota error carries a hint");
    assert!(
        hint > Duration::ZERO && hint <= Duration::from_secs(2),
        "{hint:?}"
    );

    // The unmetered tenant is untouched by its neighbor's quota.
    for _ in 0..5 {
        core.submit(free, vec![1i64; 64], SubmitOptions::default())
            .expect("unmetered tenant must admit")
            .wait()
            .unwrap();
    }
    let stats = core.stats();
    assert_eq!(stats.tenants[metered.index()].shed_quota, 1);
    assert_eq!(stats.tenants[free.index()].shed_quota, 0);
    assert_eq!(stats.tenants[free.index()].completed, 5);
}

/// Flooding a tiny-queue single-thread core from a tight loop must trip
/// admission-time shedding (`Overloaded`, retryable, with a hint) while
/// every *admitted* row still completes correctly — overload degrades
/// capacity, never correctness.
#[test]
fn overload_sheds_at_admission_and_admitted_rows_still_complete() {
    let core = ServiceCore::new(ServiceConfig {
        shards: 1,
        threads_per_shard: 1,
        max_queue: 4,
    });
    let sig: Signature<i64> = "1:1".parse().unwrap();
    let tenant = core.add_tenant(TenantSpec::new("flood", sig.clone()));
    let data = input(1 << 18, 7);
    let expect = serial::run(&sig, &data);

    let mut handles = Vec::new();
    let mut sheds = 0u32;
    for _ in 0..512 {
        match core.submit(tenant, data.clone(), SubmitOptions::default()) {
            Ok(h) => handles.push(h),
            Err(e) => {
                assert!(
                    matches!(e, EngineError::Overloaded { .. }),
                    "flood rejection must be Overloaded, got {e:?}"
                );
                assert!(e.is_retryable());
                assert!(e.retry_after_hint().unwrap() > Duration::ZERO);
                sheds += 1;
                if sheds >= 8 {
                    break;
                }
            }
        }
    }
    assert!(
        sheds >= 1,
        "512 instant submissions into a 4-deep single-thread queue must shed"
    );
    for h in handles {
        let (data, result) = h.join();
        result.expect("admitted row must complete despite overload");
        assert_eq!(data, expect);
    }
    let stats = core.stats();
    assert_eq!(
        stats.tenants[tenant.index()].shed_overload,
        u64::from(sheds)
    );
    core.shutdown();
}

/// An infeasible deadline (estimated queue delay exceeds the budget) is
/// shed at the door once the shard has a service-time estimate.
#[test]
fn infeasible_deadlines_are_shed_at_admission() {
    let core = ServiceCore::new(ServiceConfig {
        shards: 1,
        threads_per_shard: 1,
        max_queue: 64,
    });
    let sig: Signature<i64> = "(1: 1, 1)".parse().unwrap();
    let tenant = core.add_tenant(TenantSpec::new("t", sig));
    // Establish the EWMA with a few real rows.
    for _ in 0..4 {
        core.submit(tenant, vec![1i64; 1 << 16], SubmitOptions::default())
            .unwrap()
            .wait()
            .unwrap();
    }
    // Build a backlog, then ask for a budget far below the estimated
    // queue delay: admission must refuse rather than admit-and-miss.
    let mut backlog = Vec::new();
    for _ in 0..32 {
        if let Ok(h) = core.submit(tenant, vec![1i64; 1 << 16], SubmitOptions::default()) {
            backlog.push(h);
        }
    }
    let verdict = core.submit(
        tenant,
        vec![1i64; 1 << 16],
        SubmitOptions::deadline(Duration::from_nanos(1)),
    );
    let err = verdict.expect_err("nanosecond budget behind a backlog is infeasible");
    assert!(matches!(err, EngineError::Overloaded { .. }), "{err:?}");
    for h in backlog {
        h.wait().unwrap();
    }
    core.shutdown();
}

/// `abort()` resolves every in-flight handle (no hangs, no leaks) and
/// later submissions are refused.
#[test]
fn abort_resolves_everything_and_closes_the_door() {
    let core = ServiceCore::new(ServiceConfig {
        shards: 2,
        threads_per_shard: 1,
        max_queue: 256,
    });
    let sig: Signature<i64> = "1:1".parse().unwrap();
    let tenant = core.add_tenant(TenantSpec::new("t", sig));
    let handles: Vec<_> = (0..64)
        .filter_map(|_| {
            core.submit(tenant, vec![1i64; 1 << 15], SubmitOptions::default())
                .ok()
        })
        .collect();
    core.abort();
    for h in handles {
        // Every handle resolves — completed before the abort landed, or
        // cancelled by it. Nothing may hang.
        match h.wait() {
            Ok(_) | Err(EngineError::Cancelled) => {}
            Err(e) => panic!("unexpected outcome after abort: {e:?}"),
        }
    }
    let err = core
        .submit(tenant, vec![1i64; 16], SubmitOptions::default())
        .expect_err("aborted core must refuse new rows");
    assert!(matches!(err, EngineError::Cancelled), "{err:?}");
}

/// Handles are fire-and-forget: dropping one does not cancel its row
/// (the tenant was charged for it; the work completes and is counted).
#[test]
fn dropping_a_handle_does_not_cancel_the_row() {
    let core = ServiceCore::new(ServiceConfig {
        shards: 1,
        threads_per_shard: threads(),
        max_queue: 0,
    });
    let sig: Signature<i64> = "1:1".parse().unwrap();
    let tenant = core.add_tenant(TenantSpec::new("t", sig));
    for _ in 0..16 {
        drop(
            core.submit(tenant, vec![1i64; 4096], SubmitOptions::default())
                .unwrap(),
        );
    }
    // Graceful shutdown waits for every admitted row.
    core.shutdown();
    let stats = core.stats();
    assert_eq!(stats.tenants[0].completed, 16, "{stats:?}");
    assert_eq!(stats.tenants[0].failed, 0);
}
