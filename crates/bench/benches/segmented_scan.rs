//! Criterion benchmarks for segmented & sparse parallel recurrences.
//!
//! Two workload families:
//!
//! * **uniform segmentation** — 1k-element segments over 1M f64 elements
//!   (batched signal processing: many clips concatenated into one
//!   buffer). Baseline is the per-segment serial evaluator
//!   [`run_serial`]; the parallel rows measure [`SegmentedRunner`] at
//!   1/2/4 workers. This is the acceptance measurement: `plr` at ≥2
//!   threads must beat `serial`.
//! * **sparse input** — the same segmentation with 90% of chunks all
//!   zero (bursty telemetry, zero-padded batches). The rows compare the
//!   dense path (`with_sparse(false)`) against the sparse all-zero-chunk
//!   skip at a fixed worker count. This is the second acceptance
//!   measurement: `sparse` must beat `dense`.
//!
//! Plan construction (factor table, boundary map) happens once outside
//! the timed loop, mirroring the other runner benches.
//! `PLR_BENCH_QUICK=1` shrinks the sample counts — the CI smoke mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use plr_core::segmented::{run_serial, SegmentedPlan, Segments};
use plr_core::Signature;
use plr_parallel::{RunnerConfig, SegmentedRunner, Strategy};
use std::hint::black_box;

fn quick() -> bool {
    std::env::var("PLR_BENCH_QUICK").is_ok()
}

fn sig() -> Signature<f64> {
    "1:0.5".parse().unwrap()
}

fn input_f64(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 13) as f64) * 0.25 - 1.5).collect()
}

/// 90% of `chunk`-sized chunks all zero, signal in every tenth chunk —
/// the shape the sparse skip is built for.
fn sparse_input_f64(n: usize, chunk: usize) -> Vec<f64> {
    let mut data = vec![0.0f64; n];
    for c in (0..n.div_ceil(chunk)).step_by(10) {
        let start = c * chunk;
        let end = (start + chunk).min(n);
        for (i, v) in data[start..end].iter_mut().enumerate() {
            *v = ((i % 13) as f64) * 0.25 - 1.5;
        }
    }
    data
}

fn runner(segments: &Segments, n: usize, chunk: usize, threads: usize) -> SegmentedRunner<f64> {
    SegmentedRunner::with_config(
        sig(),
        segments.clone(),
        n,
        RunnerConfig {
            chunk_size: chunk,
            threads,
            strategy: Strategy::default(),
            ..Default::default()
        },
    )
    .unwrap()
}

/// Uniform 1k-element segments over 1M f64 elements: per-segment serial
/// baseline vs the segmented runner at 1/2/4 workers.
fn bench_uniform_segments(c: &mut Criterion) {
    let n = 1 << 20;
    let segments = Segments::uniform(1000, n);
    let data = input_f64(n);
    let s = sig();
    let mut g = c.benchmark_group("segmented_scan_uniform_1M");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(if quick() { 10 } else { 20 });
    g.bench_function("serial", |b| {
        b.iter(|| run_serial(black_box(&s), black_box(&segments), black_box(&data)));
    });
    for threads in [1usize, 2, 4] {
        let runner = runner(&segments, n, 1 << 16, threads);
        g.bench_function(BenchmarkId::new("plr", threads), |b| {
            b.iter(|| runner.run(black_box(&data)).unwrap());
        });
    }
    g.finish();
}

/// The same segmentation with 90% of chunks all zero: the dense path
/// (every chunk solved) vs the sparse skip, at 1 and 4 workers, plus
/// the serial baseline for scale. Order 2, where the solve the skip
/// avoids costs two multiply-adds per element.
fn bench_sparse_skip(c: &mut Criterion) {
    let n = 1 << 20;
    let chunk = 4096;
    let segments = Segments::uniform(1000, n);
    let data = sparse_input_f64(n, chunk);
    let s: Signature<f64> = "1:0.9,-0.2".parse().unwrap();
    let mut g = c.benchmark_group("segmented_scan_sparse_1M");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(if quick() { 10 } else { 20 });
    g.bench_function("serial", |b| {
        b.iter(|| run_serial(black_box(&s), black_box(&segments), black_box(&data)));
    });
    let config = |threads| RunnerConfig {
        chunk_size: chunk,
        threads,
        strategy: Strategy::default(),
        ..Default::default()
    };
    for threads in [1usize, 4] {
        let dense = SegmentedRunner::from_plan(
            SegmentedPlan::build(&s, segments.clone(), n, chunk)
                .unwrap()
                .with_sparse(false),
            config(threads),
        );
        g.bench_function(BenchmarkId::new("dense", threads), |b| {
            b.iter(|| dense.run(black_box(&data)).unwrap());
        });
        let sparse = SegmentedRunner::from_plan(
            SegmentedPlan::build(&s, segments.clone(), n, chunk).unwrap(),
            config(threads),
        );
        g.bench_function(BenchmarkId::new("sparse", threads), |b| {
            b.iter(|| sparse.run(black_box(&data)).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_uniform_segments, bench_sparse_skip);
criterion_main!(benches);
