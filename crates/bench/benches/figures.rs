//! Criterion benchmarks over the machine-model executors themselves:
//! how long the simulator takes to functionally execute and account each
//! code (useful for tracking the reproduction's own performance), plus the
//! figure-generation pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use plr_baselines::executor::RecurrenceExecutor;
use plr_baselines::{Cub, Sam, Scan};
use plr_bench::figures;
use plr_bench::PlrExecutor;
use plr_core::prefix;
use plr_sim::DeviceConfig;
use std::hint::black_box;

fn bench_functional_executors(c: &mut Criterion) {
    let device = DeviceConfig::titan_x();
    let n = 1 << 18;
    let input: Vec<i64> = (0..n).map(|i| (i % 13) as i64 - 6).collect();
    let sig = prefix::higher_order_prefix_sum::<i64>(2);

    let mut g = c.benchmark_group("simulated_execution_256K");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.bench_function("plr", |b| {
        b.iter(|| PlrExecutor::default().run(black_box(&sig), black_box(&input), &device));
    });
    g.bench_function("cub", |b| {
        b.iter(|| Cub.run(black_box(&sig), black_box(&input), &device));
    });
    g.bench_function("sam", |b| {
        b.iter(|| Sam.run(black_box(&sig), black_box(&input), &device));
    });
    g.bench_function("scan", |b| {
        b.iter(|| Scan.run(black_box(&sig), black_box(&input), &device));
    });
    g.finish();
}

fn bench_figure_generation(c: &mut Criterion) {
    let device = DeviceConfig::titan_x();
    let mut g = c.benchmark_group("figure_generation");
    g.sample_size(10);
    for fig in [1usize, 4, 6, 10] {
        g.bench_function(BenchmarkId::new("figure", fig), |b| {
            b.iter(|| figures::figure(black_box(fig), &device));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_functional_executors, bench_figure_generation);
criterion_main!(benches);
