//! Traffic simulation for the multi-tenant service core: mixed tenant
//! signatures under closed-loop and open-loop (Poisson and burst)
//! arrivals at 1x/2x/4x of calibrated capacity, reporting per-tenant
//! p50/p99/p999 admission-to-completion latency, goodput, shed rate, and
//! deadline misses.
//!
//! This is a custom harness (no criterion): the quantities of interest
//! are latency *distributions* of a live service under load, not mean
//! wall times of a closed kernel.
//!
//! `PLR_BENCH_QUICK=1` shrinks rows and run durations to CI-smoke scale;
//! `PLR_THREADS=n` pins the per-shard worker count (the CI matrix leg);
//! `CRITERION_JSON=path` writes the full record set as JSON (the
//! committed `BENCH_service.json` is the full-mode output).

use plr_core::signature::Signature;
use plr_parallel::resolve_threads;
use plr_service::{ServiceConfig, ServiceCore, SubmitOptions, TenantId, TenantSpec};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Deterministic PRNG (xorshift64*), no external deps.

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential inter-arrival gap for a Poisson process of `rate`/s.
    fn exp_gap(&mut self, rate: f64) -> Duration {
        let u = self.unit_f64().max(1e-12);
        Duration::from_secs_f64((-u.ln() / rate).min(1.0))
    }
}

// ---------------------------------------------------------------------
// Per-tenant measurement accumulator.

#[derive(Default)]
struct Tally {
    latencies_ns: Vec<u64>,
    admitted: u64,
    shed: u64,
    completed: u64,
    failed: u64,
    deadline_misses: u64,
    /// Worst amount by which a *completed* row overshot its deadline
    /// budget, in nanoseconds (acceptance: bounded by one EWMA service
    /// time — shedding happens at the door, not after queueing).
    worst_overshoot_ns: u64,
    completed_elems: u64,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.latencies_ns.extend(other.latencies_ns);
        self.admitted += other.admitted;
        self.shed += other.shed;
        self.completed += other.completed;
        self.failed += other.failed;
        self.deadline_misses += other.deadline_misses;
        self.worst_overshoot_ns = self.worst_overshoot_ns.max(other.worst_overshoot_ns);
        self.completed_elems += other.completed_elems;
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

// ---------------------------------------------------------------------
// Scenario plumbing.

struct Tenant {
    name: &'static str,
    weight: u32,
    sig: Signature<i64>,
}

fn tenants() -> Vec<Tenant> {
    vec![
        Tenant {
            name: "gold",
            weight: 4,
            sig: "1:1".parse().unwrap(),
        },
        Tenant {
            name: "silver",
            weight: 2,
            sig: "(1: 1, 1)".parse().unwrap(),
        },
        Tenant {
            name: "bronze",
            weight: 1,
            sig: "(1: 2, -1)".parse().unwrap(),
        },
    ]
}

fn row(len: usize, salt: u64) -> Vec<i64> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(31).wrapping_add(salt * 17) % 13) as i64 - 6)
        .collect()
}

fn build_core(width: usize, max_queue: usize) -> (ServiceCore<i64>, Vec<TenantId>) {
    let core = ServiceCore::new(ServiceConfig {
        shards: 2,
        threads_per_shard: width,
        max_queue,
    });
    let ids = tenants()
        .into_iter()
        .map(|t| core.add_tenant(TenantSpec::new(t.name, t.sig).with_weight(t.weight)))
        .collect();
    (core, ids)
}

/// Mean per-row service time across the tenant mix, measured on a warm
/// single-client core — the unit everything else is scaled by.
fn calibrate(width: usize, len: usize) -> Duration {
    let (core, ids) = build_core(width, 64);
    // Warm plans and pools.
    for &id in &ids {
        core.submit(id, row(len, 1), SubmitOptions::default())
            .unwrap()
            .wait()
            .unwrap();
    }
    let reps: u32 = 8;
    let start = Instant::now();
    for r in 0..reps {
        for &id in &ids {
            core.submit(id, row(len, u64::from(r)), SubmitOptions::default())
                .unwrap()
                .wait()
                .unwrap();
        }
    }
    let per_row = start.elapsed() / (reps * ids.len() as u32);
    core.shutdown();
    per_row.max(Duration::from_micros(5))
}

/// Submits one row and fully accounts the outcome into `tally`.
fn submit_and_tally(
    core: &ServiceCore<i64>,
    id: TenantId,
    data: Vec<i64>,
    budget: Duration,
    tally: &mut Tally,
) {
    let len = data.len() as u64;
    let t0 = Instant::now();
    match core.submit(id, data, SubmitOptions::deadline(budget)) {
        Ok(handle) => {
            tally.admitted += 1;
            match handle.wait() {
                Ok(_) => {
                    let lat = t0.elapsed();
                    tally.completed += 1;
                    tally.completed_elems += len;
                    tally.latencies_ns.push(lat.as_nanos() as u64);
                    if lat > budget {
                        tally.worst_overshoot_ns = tally
                            .worst_overshoot_ns
                            .max((lat - budget).as_nanos() as u64);
                    }
                }
                Err(plr_core::error::EngineError::DeadlineExceeded { .. }) => {
                    tally.deadline_misses += 1;
                }
                Err(_) => tally.failed += 1,
            }
        }
        Err(e) if e.is_retryable() => tally.shed += 1,
        Err(_) => tally.failed += 1,
    }
}

/// Closed loop: `clients_per_tenant * 3` client threads, each
/// submit→wait→repeat with a short decorrelated backoff after a shed.
/// Overload factor = total clients / total workers.
fn closed_loop(
    width: usize,
    len: usize,
    clients_per_tenant: usize,
    run_for: Duration,
    budget: Duration,
    max_queue: usize,
) -> Vec<Tally> {
    let (core, ids) = build_core(width, max_queue);
    let core = Arc::new(core);
    // Warm every tenant's plan before the clock starts.
    for &id in &ids {
        core.submit(id, row(len, 0), SubmitOptions::default())
            .unwrap()
            .wait()
            .unwrap();
    }
    let deadline = Instant::now() + run_for;
    let mut threads = Vec::new();
    for (t, &id) in ids.iter().enumerate() {
        for c in 0..clients_per_tenant {
            let core = Arc::clone(&core);
            // Cap retry sleeps at the full deadline budget: shed clients
            // that spin faster than the service drains only steal CPU
            // from the workers they are waiting on.
            let mut backoff = plr_parallel::Backoff::with_seed(
                Duration::from_micros(50),
                budget,
                (t as u64 + 1) * 1000 + c as u64,
            );
            threads.push(std::thread::spawn(move || {
                let mut tally = Tally::default();
                let data = row(len, t as u64);
                while Instant::now() < deadline {
                    let shed_before = tally.shed;
                    submit_and_tally(&core, id, data.clone(), budget, &mut tally);
                    if tally.shed > shed_before {
                        std::thread::sleep(backoff.next_delay());
                    } else {
                        backoff.reset();
                    }
                }
                (t, tally)
            }));
        }
    }
    let mut out: Vec<Tally> = (0..ids.len()).map(|_| Tally::default()).collect();
    for th in threads {
        let (t, tally) = th.join().expect("client thread");
        out[t].absorb(tally);
    }
    core.shutdown();
    out
}

/// Open loop: a single arrival process (Poisson gaps, or fixed-size
/// bursts at matched average rate) offers rows at `rate`/s across the
/// tenant mix; a waiter pool resolves handles off a shared deque so
/// submission never blocks on completion.
fn open_loop(
    width: usize,
    len: usize,
    rate: f64,
    burst: usize,
    run_for: Duration,
    budget: Duration,
) -> Vec<Tally> {
    let (core, ids) = build_core(width, (2 * width).max(2));
    let core = Arc::new(core);
    for &id in &ids {
        core.submit(id, row(len, 0), SubmitOptions::default())
            .unwrap()
            .wait()
            .unwrap();
    }
    type Pending = (usize, u64, Instant, plr_service::ServiceHandle<i64>);
    let pending: Arc<Mutex<VecDeque<Pending>>> = Arc::new(Mutex::new(VecDeque::new()));
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut waiters = Vec::new();
    for _ in 0..4 {
        let pending = Arc::clone(&pending);
        let done = Arc::clone(&done);
        waiters.push(std::thread::spawn(move || {
            let mut tallies: Vec<Tally> = (0..3).map(|_| Tally::default()).collect();
            loop {
                let item = pending.lock().unwrap().pop_front();
                let Some((t, elems, t0, handle)) = item else {
                    if done.load(std::sync::atomic::Ordering::Acquire) {
                        return tallies;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                    continue;
                };
                match handle.wait() {
                    Ok(_) => {
                        let lat = t0.elapsed();
                        tallies[t].completed += 1;
                        tallies[t].completed_elems += elems;
                        tallies[t].latencies_ns.push(lat.as_nanos() as u64);
                        if lat > budget {
                            tallies[t].worst_overshoot_ns = tallies[t]
                                .worst_overshoot_ns
                                .max((lat - budget).as_nanos() as u64);
                        }
                    }
                    Err(plr_core::error::EngineError::DeadlineExceeded { .. }) => {
                        tallies[t].deadline_misses += 1;
                    }
                    Err(_) => tallies[t].failed += 1,
                }
            }
        }));
    }

    // Weighted tenant choice matching the fair-share ratio, so offered
    // load is already shaped 4:2:1 and the queues stay mixed.
    let weights: Vec<u32> = tenants().iter().map(|t| t.weight).collect();
    let total_w: u32 = weights.iter().sum();
    let mut rng = Rng::new(0x5EED + burst as u64);
    let mut tallies: Vec<Tally> = (0..ids.len()).map(|_| Tally::default()).collect();
    let stop_at = Instant::now() + run_for;
    while Instant::now() < stop_at {
        let n = burst.max(1);
        for _ in 0..n {
            let mut pick = (rng.next_u64() % u64::from(total_w)) as u32;
            let mut t = 0;
            for (i, &w) in weights.iter().enumerate() {
                if pick < w {
                    t = i;
                    break;
                }
                pick -= w;
            }
            let data = row(len, t as u64);
            let elems = data.len() as u64;
            let t0 = Instant::now();
            match core.submit(ids[t], data, SubmitOptions::deadline(budget)) {
                Ok(handle) => {
                    tallies[t].admitted += 1;
                    pending.lock().unwrap().push_back((t, elems, t0, handle));
                }
                Err(e) if e.is_retryable() => tallies[t].shed += 1,
                Err(_) => tallies[t].failed += 1,
            }
        }
        // Burst mode sleeps n gaps at once; Poisson sleeps one.
        let mut gap = Duration::ZERO;
        for _ in 0..n {
            gap += rng.exp_gap(rate);
        }
        std::thread::sleep(gap);
    }
    done.store(true, std::sync::atomic::Ordering::Release);
    for w in waiters {
        for (t, tally) in w.join().expect("waiter").into_iter().enumerate() {
            tallies[t].absorb(tally);
        }
    }
    core.shutdown();
    tallies
}

// ---------------------------------------------------------------------
// Reporting.

struct Record {
    mode: &'static str,
    load_factor: usize,
    tenant: &'static str,
    weight: u32,
    tally: Tally,
    run_secs: f64,
    budget_us: u64,
}

fn render(records: &mut [Record]) -> String {
    let mut json = String::from("[\n");
    let last = records.len();
    for (i, r) in records.iter_mut().enumerate() {
        r.tally.latencies_ns.sort_unstable();
        let l = &r.tally.latencies_ns;
        let offered = r.tally.admitted + r.tally.shed + r.tally.failed;
        let shed_rate = if offered == 0 {
            0.0
        } else {
            r.tally.shed as f64 / offered as f64
        };
        println!(
            "{:>11} {}x {:<7} admitted {:>6}  shed {:>6} ({:>5.1}%)  p50 {:>8.1}us  p99 {:>8.1}us  p999 {:>8.1}us  goodput {:>9.0} elem/s  misses {}",
            r.mode,
            r.load_factor,
            r.tenant,
            r.tally.admitted,
            r.tally.shed,
            shed_rate * 100.0,
            percentile(l, 0.50) as f64 / 1e3,
            percentile(l, 0.99) as f64 / 1e3,
            percentile(l, 0.999) as f64 / 1e3,
            r.tally.completed_elems as f64 / r.run_secs,
            r.tally.deadline_misses,
        );
        json.push_str(&format!(
            "  {{ \"mode\": \"{}\", \"load_factor\": {}, \"tenant\": \"{}\", \"weight\": {}, \
             \"admitted\": {}, \"shed\": {}, \"failed\": {}, \"completed\": {}, \
             \"shed_rate\": {:.4}, \"deadline_misses\": {}, \"worst_overshoot_us\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \
             \"goodput_elems_per_s\": {:.0}, \"budget_us\": {}, \"run_secs\": {:.2} }}{}\n",
            r.mode,
            r.load_factor,
            r.tenant,
            r.weight,
            r.tally.admitted,
            r.tally.shed,
            r.tally.failed,
            r.tally.completed,
            shed_rate,
            r.tally.deadline_misses,
            r.tally.worst_overshoot_ns as f64 / 1e3,
            percentile(l, 0.50) as f64 / 1e3,
            percentile(l, 0.99) as f64 / 1e3,
            percentile(l, 0.999) as f64 / 1e3,
            r.tally.completed_elems as f64 / r.run_secs,
            r.budget_us,
            r.run_secs,
            if i + 1 == last { "" } else { "," },
        ));
    }
    json.push_str("]\n");
    json
}

fn main() {
    let quick = std::env::var("PLR_BENCH_QUICK").is_ok();
    let width = std::env::var("PLR_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| (resolve_threads(0) / 2).max(1));
    let len = if quick { 1 << 13 } else { 1 << 16 };
    let run_for = Duration::from_millis(if quick { 400 } else { 3000 });

    let service_time = calibrate(width, len);
    // Deadline of ~12 service times: tight enough that admission-time
    // feasibility shedding (not post-queue timeouts) bounds latency. The
    // floor keeps the budget above OS scheduler jitter on small rows —
    // a sub-millisecond budget would measure the container's noise, not
    // the service's shedding.
    let budget = (service_time * 12).max(Duration::from_millis(3));
    let total_workers = 2 * width;
    println!(
        "service_traffic: width {width}/shard x2 shards, rows of {len}, \
         calibrated service time {service_time:?}, deadline budget {budget:?}"
    );

    let names = tenants();
    let mut records = Vec::new();

    // Shedding/latency legs: a shallow queue (total worker count per
    // shard), client population = load factor x worker count. Overload
    // shows up as admission rejections with bounded admitted-row p99.
    for &factor in &[1usize, 2, 4] {
        let clients = (factor * total_workers).div_ceil(3).max(1);
        let tallies = closed_loop(width, len, clients, run_for, budget, (2 * width).max(2));
        for (t, tally) in tallies.into_iter().enumerate() {
            records.push(Record {
                mode: "closed",
                load_factor: factor,
                tenant: names[t].name,
                weight: names[t].weight,
                tally,
                run_secs: run_for.as_secs_f64(),
                budget_us: budget.as_micros() as u64,
            });
        }
    }

    // Saturation leg: deep queue, generous deadline, every tenant's
    // client pool large enough to stay continuously backlogged — the
    // operating point where weighted fair queueing expresses the 4:2:1
    // goodput contract.
    {
        let sat_budget = service_time * 200;
        let sat_queue = (4 * width).max(32);
        let clients = (4 * total_workers).div_ceil(3).max(8);
        let tallies = closed_loop(width, len, clients, run_for, sat_budget, sat_queue);
        for (t, tally) in tallies.into_iter().enumerate() {
            records.push(Record {
                mode: "closed_sat",
                load_factor: 4,
                tenant: names[t].name,
                weight: names[t].weight,
                tally,
                run_secs: run_for.as_secs_f64(),
                budget_us: sat_budget.as_micros() as u64,
            });
        }
    }

    // Open loop at 2x calibrated capacity: Poisson arrivals, then the
    // same average rate in bursts of 16.
    let capacity = total_workers as f64 / service_time.as_secs_f64();
    for (mode, burst) in [("open_poisson", 1usize), ("open_burst16", 16)] {
        let tallies = open_loop(width, len, 2.0 * capacity, burst, run_for, budget);
        for (t, tally) in tallies.into_iter().enumerate() {
            records.push(Record {
                mode,
                load_factor: 2,
                tenant: names[t].name,
                weight: names[t].weight,
                tally,
                run_secs: run_for.as_secs_f64(),
                budget_us: budget.as_micros() as u64,
            });
        }
    }

    let json = render(&mut records);
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        std::fs::write(&path, json).expect("write CRITERION_JSON");
        println!("wrote {path}");
    }
}
