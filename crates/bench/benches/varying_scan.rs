//! Criterion benchmarks for the time-varying matrix-carry lowering.
//!
//! Two workload families from the paper's "operators beyond constant
//! coefficients" frontier:
//!
//! * **order-1 selective scan** (the Mamba/SSM recurrence
//!   `y[i] = x[i] + a[i]·y[i-1]` with per-element gates) — f32, 1M
//!   elements;
//! * **order-2 adaptive filter** (per-element biquad feedback) — f64.
//!
//! The baseline is the *naive* varying evaluator
//! ([`plr_core::varying::reference`]): the straightforward
//! bounds-checked tap loop anyone would write first. The parallel rows
//! measure [`VaryingRunner`] at 1/2/4 workers; plan construction
//! (transition matrices, kernel dedupe) happens once outside the timed
//! loop, mirroring the constant-coefficient benches where runner
//! construction is likewise excluded. `PLR_BENCH_QUICK=1` shrinks the
//! sample counts — the CI smoke mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use plr_core::varying::{reference, VaryingSignature};
use plr_parallel::{RunnerConfig, Strategy, VaryingRunner};
use std::hint::black_box;

fn quick() -> bool {
    std::env::var("PLR_BENCH_QUICK").is_ok()
}

/// Deterministic gates in `[0.1, 0.5]` (contractive: the stable
/// selective-scan regime).
fn gates_f32(n: usize) -> Vec<f32> {
    let mut s = 0x9e3779b97f4a7c15u64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            0.1 + 0.4 * ((s >> 40) as f32 / (1u64 << 24) as f32)
        })
        .collect()
}

/// Deterministic order-2 coefficient rows, stable (|a1|≤0.8, |a2|≤0.15).
fn coeffs_f64_order2(n: usize) -> Vec<f64> {
    let mut s = 0x243f6a8885a308d3u64;
    (0..2 * n)
        .map(|i| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let u = (s >> 11) as f64 / (1u64 << 53) as f64;
            if i % 2 == 0 {
                1.6 * u - 0.8
            } else {
                0.3 * u - 0.15
            }
        })
        .collect()
}

fn input_f32(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i % 17) as f32) * 0.25 - 2.0).collect()
}

fn input_f64(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 13) as f64) * 0.25 - 1.5).collect()
}

/// Order-1 f32 selective scan at 1M elements: naive serial evaluator vs
/// the matrix-carry runner at 1/2/4 workers. This is the acceptance
/// measurement: `plr` at ≥2 threads must beat `serial_naive`.
fn bench_selective_scan(c: &mut Criterion) {
    let n = 1 << 20;
    let sig = VaryingSignature::first_order(gates_f32(n)).unwrap();
    let data = input_f32(n);
    let mut g = c.benchmark_group("varying_scan_order1_1M");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(if quick() { 10 } else { 20 });
    g.bench_function("serial_naive", |b| {
        b.iter(|| reference(black_box(&sig), black_box(&data)).unwrap());
    });
    for threads in [1usize, 2, 4] {
        let runner = VaryingRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 1 << 16,
                threads,
                strategy: Strategy::default(),
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_function(BenchmarkId::new("plr", threads), |b| {
            b.iter(|| runner.run(black_box(&data)).unwrap());
        });
    }
    g.finish();
}

/// Order-2 f64 adaptive filter: the matrix-carry path where the carry is
/// a genuine 2×2 transition matrix per chunk.
fn bench_adaptive_filter(c: &mut Criterion) {
    let n = if quick() { 1 << 19 } else { 1 << 20 };
    let sig = VaryingSignature::new(2, coeffs_f64_order2(n)).unwrap();
    let data = input_f64(n);
    let mut g = c.benchmark_group(format!("varying_filter_order2_{}k", n >> 10));
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(if quick() { 10 } else { 20 });
    g.bench_function("serial_naive", |b| {
        b.iter(|| reference(black_box(&sig), black_box(&data)).unwrap());
    });
    for threads in [1usize, 2, 4] {
        let runner = VaryingRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 1 << 16,
                threads,
                strategy: Strategy::default(),
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_function(BenchmarkId::new("plr", threads), |b| {
            b.iter(|| runner.run(black_box(&data)).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_selective_scan, bench_adaptive_filter);
criterion_main!(benches);
