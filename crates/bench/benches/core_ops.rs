//! Criterion microbenchmarks for the core algorithm stages: n-nacci factor
//! precomputation (the "offline" compile-time work the paper reports at
//! ~10 ms), Phase 1 doubling, Phase 2 propagation, and the end-to-end
//! single-threaded engine against the serial baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use plr_core::engine::{CarryPropagation, Engine, EngineConfig, LocalSolve};
use plr_core::nacci::CorrectionTable;
use plr_core::signature::Signature;
use plr_core::{phase1, phase2, serial};
use std::hint::black_box;

fn input(n: usize) -> Vec<i64> {
    (0..n)
        .map(|i| ((i as i64).wrapping_mul(0x9E3779B9) % 41) - 20)
        .collect()
}

fn bench_factor_precompute(c: &mut Criterion) {
    let mut g = c.benchmark_group("nacci_precompute");
    for (name, fb) in [
        ("order1", vec![1i64]),
        ("order2", vec![2, -1]),
        ("order3", vec![3, -3, 1]),
    ] {
        // The paper's full chunk size for integer signatures.
        g.bench_function(BenchmarkId::new(name, 11264), |b| {
            b.iter(|| CorrectionTable::generate(black_box(&fb), 11264));
        });
    }
    g.finish();
}

fn bench_phases(c: &mut Criterion) {
    let n = 1 << 20;
    let data = input(n);
    let fb = [2i64, -1];
    let m = 1024;
    let table = CorrectionTable::generate(&fb, m);

    let mut g = c.benchmark_group("phases");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("phase1_doubling_to_1024", |b| {
        b.iter_batched(
            || data.clone(),
            |mut d| phase1::run(&table, &mut d, m),
            criterion::BatchSize::LargeInput,
        );
    });
    let locals = {
        let mut d = data.clone();
        for chunk in d.chunks_mut(m) {
            serial::recursive_in_place(&fb, chunk);
        }
        d
    };
    g.bench_function("phase2_sequential", |b| {
        b.iter_batched(
            || locals.clone(),
            |mut d| phase2::propagate_sequential(&table, &mut d, m),
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function("phase2_decoupled", |b| {
        b.iter_batched(
            || locals.clone(),
            |mut d| phase2::propagate_decoupled(&table, &mut d, m),
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_engine_vs_serial(c: &mut Criterion) {
    let n = 1 << 20;
    let data = input(n);
    let mut g = c.benchmark_group("engine_vs_serial_1M");
    g.throughput(Throughput::Elements(n as u64));
    for text in ["1:1", "1:2,-1", "1:3,-3,1"] {
        let sig: Signature<i64> = text.parse().unwrap();
        g.bench_function(BenchmarkId::new("serial", text), |b| {
            b.iter(|| serial::run(black_box(&sig), black_box(&data)));
        });
        let engine = Engine::with_config(
            sig,
            EngineConfig {
                chunk_size: 4096,
                local_solve: LocalSolve::Serial,
                carry_propagation: CarryPropagation::Decoupled,
                flush_denormals: true,
            },
        )
        .unwrap();
        g.bench_function(BenchmarkId::new("engine_decoupled", text), |b| {
            b.iter(|| engine.run(black_box(&data)).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_factor_precompute,
    bench_phases,
    bench_engine_vs_serial
);
criterion_main!(benches);
