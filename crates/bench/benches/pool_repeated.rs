//! Persistent-pool benchmarks: repeated small-to-medium runs against a
//! seed-style baseline that pays a full thread spawn/join (plus a separate
//! FIR buffer and copy-back) on every call, the way the runner did before
//! the pool existed. The interesting number is the repeated-call mean —
//! warm parked workers vs per-call `std::thread::scope` — plus a
//! single-shot large-input group confirming the pool costs nothing when
//! spawn overhead amortizes anyway. `PLR_BENCH_QUICK=1` shrinks the sweep
//! to one small size with few samples and skips the 8M single-shot group —
//! the CI smoke mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use plr_core::element::Element;
use plr_core::nacci::{carries_of, CorrectionTable};
use plr_core::serial;
use plr_core::signature::Signature;
use plr_parallel::{resolve_threads, ParallelRunner, RunnerConfig, Strategy};
use std::hint::black_box;
use std::sync::{Mutex, OnceLock};

fn int_input(n: usize) -> Vec<i64> {
    (0..n)
        .map(|i| ((i as i64).wrapping_mul(0x9E3779B9) % 41) - 20)
        .collect()
}

/// The pre-pool execution shape, reconstructed as a baseline: every call
/// maps the FIR stage through a second full-size buffer, then spawns a
/// fresh `std::thread::scope` for the local solves and another for the
/// correction pass, with a sequential carry chain in between.
fn spawn_per_call<T: Element>(
    sig: &Signature<T>,
    table: &CorrectionTable<T>,
    fir: &[T],
    input: &[T],
    m: usize,
    threads: usize,
) -> Vec<T> {
    let mut data = input.to_vec();
    spawn_per_call_in_place(sig, table, fir, &mut data, m, threads);
    data
}

/// The baseline's map stage, shaped like the pre-pool runner's: a zeroed
/// full-size buffer, its own scoped spawn, and a copy-back.
fn fir_stage_seed_style<T: Element>(fir: &[T], data: &mut [T], threads: usize) {
    let n = data.len();
    let chunk = n.div_ceil(threads).max(1);
    let mut out = vec![T::zero(); n];
    std::thread::scope(|scope| {
        for (idx, slice) in out.chunks_mut(chunk).enumerate() {
            let input = &*data;
            scope.spawn(move || {
                let start = idx * chunk;
                for (off, v) in slice.iter_mut().enumerate() {
                    let i = start + off;
                    let mut acc = T::zero();
                    for (j, &a) in fir.iter().enumerate() {
                        if j > i {
                            break;
                        }
                        acc = acc.add(a.mul(input[i - j]));
                    }
                    *v = acc;
                }
            });
        }
    });
    data.copy_from_slice(&out);
}

/// The in-place entry point of the baseline; "in place" is nominal — like
/// the seed, the map stage still routes through a second full-size buffer.
fn spawn_per_call_in_place<T: Element>(
    sig: &Signature<T>,
    table: &CorrectionTable<T>,
    fir: &[T],
    data: &mut [T],
    m: usize,
    threads: usize,
) {
    if !sig.is_pure_feedback() {
        fir_stage_seed_style(fir, data, threads);
    }
    let n = data.len();
    if n == 0 {
        return;
    }
    let num_chunks = n.div_ceil(m);
    let k = sig.order();
    let feedback = sig.feedback();
    let locals: Vec<OnceLock<Vec<T>>> = (0..num_chunks).map(|_| OnceLock::new()).collect();

    // Pass A: local solves, chunks fed through a bounded channel by the
    // main thread (which does no chunk work itself) — the seed's work
    // distribution, with a mutex-shared std receiver standing in for the
    // mpmc channel it used.
    {
        let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, &mut [T])>(threads);
        let rx = Mutex::new(rx);
        std::thread::scope(|s| {
            for _ in 0..threads {
                let (rx, locals) = (&rx, &locals);
                s.spawn(move || loop {
                    let msg = rx.lock().unwrap().recv();
                    let Ok((c, chunk)) = msg else { break };
                    serial::recursive_in_place(feedback, chunk);
                    let _ = locals[c].set(carries_of(chunk, k));
                });
            }
            for item in data.chunks_mut(m).enumerate() {
                tx.send(item).expect("workers outlive the feed");
            }
            drop(tx);
        });
    }

    let mut globals: Vec<Vec<T>> = Vec::with_capacity(num_chunks);
    globals.push(locals[0].get().expect("pass A filled every slot").clone());
    for c in 1..num_chunks {
        let len = m.min(n - c * m);
        globals.push(table.fixup_carries(
            &globals[c - 1],
            locals[c].get().expect("pass A filled every slot"),
            len,
        ));
    }

    // Pass B: correction, fed the same way.
    {
        let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, &mut [T])>(threads);
        let rx = Mutex::new(rx);
        std::thread::scope(|s| {
            for _ in 0..threads {
                let (rx, globals) = (&rx, &globals);
                s.spawn(move || loop {
                    let msg = rx.lock().unwrap().recv();
                    let Ok((t, chunk)) = msg else { break };
                    table.correct_chunk(chunk, &globals[t]);
                });
            }
            for (c, chunk) in data.chunks_mut(m).enumerate().skip(1) {
                tx.send((c - 1, chunk)).expect("workers outlive the feed");
            }
            drop(tx);
        });
    }
}

fn bench_repeated_runs(c: &mut Criterion) {
    // A first-order filter with a map stage (a scaled leaky integrator):
    // the seed paid a second full-size buffer plus a copy-back for the map
    // on every call, on top of the per-call thread spawns. Light per-element
    // compute keeps those per-call overheads visible at every size.
    let sig: Signature<i64> = "2:1".parse().unwrap();
    // One worker per CPU, exactly what `RunnerConfig::default()` resolves
    // to — requesting more than the machine has would just benchmark the
    // scheduler, for the baseline and the pool alike.
    let threads = resolve_threads(0);
    let m = 1 << 12;
    let (fir, recursive) = sig.split();
    let table = CorrectionTable::generate_with(recursive.feedback(), m, false);
    let runner = ParallelRunner::with_config(
        sig.clone(),
        RunnerConfig {
            chunk_size: m,
            threads,
            strategy: Strategy::default(),
            ..Default::default()
        },
    )
    .unwrap();

    // The comparison is only meaningful if the baseline is correct.
    let check = int_input(10_000);
    assert_eq!(
        spawn_per_call(&sig, &table, &fir, &check, m, threads),
        serial::run(&sig, &check),
        "seed-style baseline disagrees with the serial reference"
    );

    let quick = std::env::var("PLR_BENCH_QUICK").is_ok();
    let pows: &[usize] = if quick { &[16] } else { &[16, 18, 20] };
    for &pow in pows {
        let n = 1usize << pow;
        let mut buf = int_input(n);
        let mut g = c.benchmark_group(format!("pool_repeated_{}k", n >> 10));
        g.throughput(Throughput::Elements(n as u64));
        g.sample_size(if quick { 10 } else { 30 });
        g.bench_function(BenchmarkId::new("pooled", threads), |b| {
            b.iter(|| runner.run_in_place(black_box(&mut buf)).unwrap());
        });
        let mut buf = int_input(n);
        g.bench_function(BenchmarkId::new("spawn_per_call", threads), |b| {
            b.iter(|| spawn_per_call_in_place(&sig, &table, &fir, black_box(&mut buf), m, threads));
        });
        g.finish();
    }
}

fn bench_single_shot_large(c: &mut Criterion) {
    // At 8M elements the spawn cost amortizes; the pool must not be slower.
    // The quick smoke skips this group outright — on a CI runner the 8M
    // input dominates wall time without exercising anything the repeated
    // group doesn't.
    if std::env::var("PLR_BENCH_QUICK").is_ok() {
        return;
    }
    let sig: Signature<i64> = "2:1".parse().unwrap();
    let threads = resolve_threads(0);
    let m = 1 << 16;
    let n = 1usize << 23;
    let data = int_input(n);
    let (fir, recursive) = sig.split();
    let table = CorrectionTable::generate_with(recursive.feedback(), m, false);
    let check = int_input(10_000);
    assert_eq!(
        spawn_per_call(&sig, &table, &fir, &check, m, threads),
        serial::run(&sig, &check),
        "seed-style baseline disagrees with the serial reference"
    );
    let mut g = c.benchmark_group("pool_single_shot_8M");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(12);
    g.bench_function("spawn_per_call", |b| {
        b.iter(|| spawn_per_call(&sig, &table, &fir, black_box(&data), m, threads));
    });
    let runner = ParallelRunner::with_config(
        sig.clone(),
        RunnerConfig {
            chunk_size: m,
            threads,
            strategy: Strategy::default(),
            ..Default::default()
        },
    )
    .unwrap();
    g.bench_function("pooled", |b| {
        b.iter(|| runner.run(black_box(&data)).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_repeated_runs, bench_single_shot_large);
criterion_main!(benches);
