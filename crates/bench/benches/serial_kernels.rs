//! Scalar vs register-blocked vs explicit-SIMD serial solve kernels.
//!
//! The scalar feedback loop carries a per-element dependency (each output
//! feeds the next multiply-add), so its throughput is capped by the
//! multiply-add latency chain regardless of how wide the machine is. The
//! blocked kernel's local solution is dependency-free inside each
//! [`BLOCK`]-element block, leaving only a once-per-block carry
//! dependency — and the explicit SIMD kernels hand that independent work
//! to the vector unit directly, with no reliance on `target-cpu=native`
//! autovectorization. This bench quantifies what each layer buys per
//! order and size; for i64 it additionally pins the AVX2 half-width
//! multiply emulation so the AVX-512 `vpmullq` advantage is visible.
//!
//! Orders 1–4 use the cascaded low-pass feedback families from the
//! paper's evaluation (stable, so values stay in range however many
//! samples run). `PLR_BENCH_QUICK=1` shrinks the sweep to one small size
//! with few samples — the CI smoke mode.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use plr_core::blocked::BlockedKernel;
use plr_core::serial;
use plr_core::simd::{best_isa, Isa, SimdKernel};
use std::hint::black_box;

/// Stable feedback vectors: 1–4 cascaded `(1 : 0.8)` stages.
const FEEDBACKS: [(&str, &[f64]); 4] = [
    ("order1", &[0.8]),
    ("order2", &[1.6, -0.64]),
    ("order3", &[2.4, -1.92, 0.512]),
    ("order4", &[3.2, -3.84, 2.048, -0.4096]),
];

fn noise(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % 997) as f64 / 499.0 - 1.0)
        .collect()
}

fn bench_solve_kernels(c: &mut Criterion) {
    let quick = std::env::var("PLR_BENCH_QUICK").is_ok();
    let sizes: &[usize] = if quick {
        &[1 << 16]
    } else {
        &[1 << 16, 1 << 20, 1 << 23]
    };
    for (name, feedback) in FEEDBACKS {
        let kernel = BlockedKernel::try_new(feedback).expect("orders 1-4 are blocked");

        // The comparison is only meaningful if the kernels agree.
        let check_in = noise(10_000);
        let mut scalar_out = check_in.clone();
        serial::recursive_in_place(feedback, &mut scalar_out);
        let mut blocked_out = check_in;
        kernel.solve_in_place(&mut blocked_out);
        for (a, b) in scalar_out.iter().zip(&blocked_out) {
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "{name}: blocked kernel disagrees with the scalar loop: {a} vs {b}"
            );
        }

        for &n in sizes {
            let input = noise(n);
            let mut g = c.benchmark_group(format!("serial_kernels_{}_{}k", name, n >> 10));
            g.throughput(Throughput::Elements(n as u64));
            g.sample_size(if quick { 5 } else { 20 });
            g.bench_function("scalar", |b| {
                b.iter_batched(
                    || input.clone(),
                    |mut buf| {
                        serial::recursive_in_place(black_box(feedback), black_box(&mut buf));
                        buf
                    },
                    BatchSize::LargeInput,
                );
            });
            g.bench_function("blocked", |b| {
                b.iter_batched(
                    || input.clone(),
                    |mut buf| {
                        kernel.solve_in_place(black_box(&mut buf));
                        buf
                    },
                    BatchSize::LargeInput,
                );
            });
            if let Some(simd) = SimdKernel::preferred(feedback) {
                g.bench_function(format!("simd_{:?}", simd.isa()).to_lowercase(), |b| {
                    b.iter_batched(
                        || input.clone(),
                        |mut buf| {
                            simd.solve_in_place(black_box(&mut buf));
                            buf
                        },
                        BatchSize::LargeInput,
                    );
                });
            }
            g.finish();
        }
    }
}

fn bench_solve_kernels_int(c: &mut Criterion) {
    // One integer group: exact arithmetic, same dependency structure. The
    // second-order prefix sum is the paper's Section 2.3 workhorse.
    let quick = std::env::var("PLR_BENCH_QUICK").is_ok();
    let feedback: &[i64] = &[2, -1];
    let kernel = BlockedKernel::try_new(feedback).expect("order 2 is blocked");
    let n: usize = if quick { 1 << 16 } else { 1 << 20 };
    let input: Vec<i64> = (0..n)
        .map(|i| ((i as i64).wrapping_mul(31) % 17) - 8)
        .collect();

    let mut scalar_out = input.clone();
    serial::recursive_in_place(feedback, &mut scalar_out);
    let mut blocked_out = input.clone();
    kernel.solve_in_place(&mut blocked_out);
    assert_eq!(
        scalar_out, blocked_out,
        "integer kernels must agree exactly"
    );

    let mut g = c.benchmark_group(format!("serial_kernels_i64_order2_{}k", n >> 10));
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(if quick { 5 } else { 20 });
    g.bench_function("scalar", |b| {
        b.iter_batched(
            || input.clone(),
            |mut buf| {
                serial::recursive_in_place(black_box(feedback), black_box(&mut buf));
                buf
            },
            BatchSize::LargeInput,
        );
    });
    g.bench_function("blocked", |b| {
        b.iter_batched(
            || input.clone(),
            |mut buf| {
                kernel.solve_in_place(black_box(&mut buf));
                buf
            },
            BatchSize::LargeInput,
        );
    });
    // Every explicit integer ISA, so the AVX2 multiply emulation and the
    // AVX-512 `vpmullq` path are measured side by side where present.
    for isa in [Isa::Portable, Isa::Avx2, Isa::Avx512] {
        let Some(simd) = SimdKernel::try_new_with(feedback, isa) else {
            continue;
        };
        let label = if best_isa::<i64>() == Some(isa) {
            format!("simd_{isa:?}_best").to_lowercase()
        } else {
            format!("simd_{isa:?}").to_lowercase()
        };
        let mut check = input.clone();
        simd.solve_in_place(&mut check);
        assert_eq!(scalar_out, check, "{isa:?} i64 kernel must agree exactly");
        g.bench_function(label, |b| {
            b.iter_batched(
                || input.clone(),
                |mut buf| {
                    simd.solve_in_place(black_box(&mut buf));
                    buf
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_solve_kernels, bench_solve_kernels_int);
criterion_main!(benches);
