//! Criterion benchmarks for the beyond-the-paper components: streaming
//! state carrying, segmented recurrences, the tropical semiring, the batch
//! runner, and recurrence composition.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use plr_core::signature::Signature;
use plr_core::tropical::MaxPlus;
use plr_core::{compose, filters, segmented, serial, stream, Element};
use plr_parallel::BatchRunner;
use std::hint::black_box;

fn bench_streaming(c: &mut Criterion) {
    let n = 1 << 20;
    let input: Vec<f32> = (0..n).map(|i| ((i % 17) as f32) * 0.25 - 2.0).collect();
    let sig: Signature<f32> = "0.04:1.6,-0.64".parse().unwrap();
    let mut g = c.benchmark_group("streaming_1M");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(20);
    g.bench_function("whole", |b| {
        b.iter(|| serial::run(black_box(&sig), black_box(&input)));
    });
    g.bench_function("blocks_of_4096", |b| {
        b.iter(|| {
            let mut state = stream::StreamState::new(sig.clone());
            let mut out = Vec::with_capacity(n);
            for block in input.chunks(4096) {
                out.extend(state.process(block));
            }
            out
        });
    });
    g.finish();
}

fn bench_segmented(c: &mut Criterion) {
    let n = 1 << 20;
    let input: Vec<i64> = (0..n).map(|i| (i % 9) as i64 - 4).collect();
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    let segments = segmented::Segments::uniform(1 << 12, n);
    let mut g = c.benchmark_group("segmented_1M");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(20);
    g.bench_function("serial", |b| {
        b.iter(|| segmented::run_serial(black_box(&sig), &segments, black_box(&input)));
    });
    g.bench_function("chunked", |b| {
        b.iter(|| {
            segmented::run_chunked(black_box(&sig), &segments, black_box(&input), 1 << 10).unwrap()
        });
    });
    g.finish();
}

fn bench_tropical(c: &mut Criterion) {
    let n = 1 << 20;
    let input: Vec<MaxPlus> = (0..n)
        .map(|i| MaxPlus::new(if i % 97 == 0 { 5.0 } else { 0.0 }))
        .collect();
    let sig = Signature::new(vec![MaxPlus::one()], vec![MaxPlus::new(-0.01)]).unwrap();
    let mut g = c.benchmark_group("tropical_envelope_1M");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(20);
    g.bench_function("serial", |b| {
        b.iter(|| serial::run(black_box(&sig), black_box(&input)));
    });
    g.finish();
}

fn bench_batch_rows(c: &mut Criterion) {
    let width = 1024;
    let rows = 1024;
    let sig: Signature<f32> = filters::low_pass(0.8, 2).cast();
    let data: Vec<f32> = (0..width * rows)
        .map(|i| ((i % 23) as f32) - 11.0)
        .collect();
    let mut g = c.benchmark_group("batch_rows_1024x1024");
    g.throughput(Throughput::Elements((width * rows) as u64));
    g.sample_size(15);
    g.bench_function("batch_runner", |b| {
        let runner = BatchRunner::new(sig.clone(), 0);
        b.iter_batched(
            || data.clone(),
            |mut d| runner.run_rows(&mut d, width).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_composition(c: &mut Criterion) {
    let mut g = c.benchmark_group("compose");
    let lp = filters::low_pass(0.8, 1);
    g.bench_function("power_5_stages", |b| {
        b.iter(|| compose::power(black_box(&lp), 5));
    });
    let lp3 = filters::low_pass(0.8, 3);
    g.bench_function("decompose_3rd_order", |b| {
        b.iter(|| compose::decompose_stages(black_box(&lp3)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_streaming,
    bench_segmented,
    bench_tropical,
    bench_batch_rows,
    bench_composition
);
criterion_main!(benches);
