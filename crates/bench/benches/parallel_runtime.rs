//! Criterion benchmarks for the real multithreaded runtime: wall-clock
//! speedup of the chunked decoupled-look-back algorithm over the serial
//! loop, across thread counts and recurrence types. This is the
//! reproduction's genuine (non-modelled) parallel measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use plr_core::serial;
use plr_core::signature::Signature;
use plr_parallel::{ParallelRunner, RunnerConfig, Strategy};
use std::hint::black_box;

fn int_input(n: usize) -> Vec<i64> {
    (0..n)
        .map(|i| ((i as i64).wrapping_mul(0x9E3779B9) % 41) - 20)
        .collect()
}

fn float_input(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i % 17) as f32) * 0.25 - 2.0).collect()
}

fn bench_speedup_int(c: &mut Criterion) {
    let n = 1 << 23; // 8M elements
    let data = int_input(n);
    let mut g = c.benchmark_group("parallel_order2_8M");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(15);
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    g.bench_function("serial", |b| {
        b.iter(|| serial::run(black_box(&sig), black_box(&data)));
    });
    for threads in [1usize, 2, 4, 8] {
        let runner = ParallelRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 1 << 16,
                threads,
                strategy: Strategy::default(),
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_function(BenchmarkId::new("plr", threads), |b| {
            b.iter(|| runner.run(black_box(&data)).unwrap());
        });
    }
    g.finish();
}

fn bench_speedup_filter(c: &mut Criterion) {
    let n = 1 << 23;
    let data = float_input(n);
    let mut g = c.benchmark_group("parallel_lowpass2_8M");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(15);
    let sig: Signature<f32> = "0.04:1.6,-0.64".parse().unwrap();
    g.bench_function("serial", |b| {
        b.iter(|| serial::run(black_box(&sig), black_box(&data)));
    });
    for threads in [2usize, 8] {
        let runner = ParallelRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 1 << 16,
                threads,
                strategy: Strategy::default(),
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_function(BenchmarkId::new("plr", threads), |b| {
            b.iter(|| runner.run(black_box(&data)).unwrap());
        });
    }
    g.finish();
}

fn bench_prefix_sum(c: &mut Criterion) {
    let n = 1 << 24; // 16M: bandwidth-bound on a CPU too
    let data = int_input(n);
    let mut g = c.benchmark_group("parallel_prefix_sum_16M");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(15);
    let sig: Signature<i64> = "1:1".parse().unwrap();
    g.bench_function("serial", |b| {
        b.iter(|| serial::run(black_box(&sig), black_box(&data)));
    });
    let runner = ParallelRunner::with_config(
        sig,
        RunnerConfig {
            chunk_size: 1 << 17,
            threads: 0,
            strategy: Strategy::default(),
            ..Default::default()
        },
    )
    .unwrap();
    g.bench_function("plr_all_cores", |b| {
        b.iter(|| runner.run(black_box(&data)).unwrap());
    });
    g.finish();
}

fn bench_strategies(c: &mut Criterion) {
    // Look-back pipeline (single pass over the data, spins on carries) vs
    // two-pass (barrier + sequential chain, touches the data twice).
    let n = 1 << 23;
    let data = int_input(n);
    let mut g = c.benchmark_group("strategy_order2_8M");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(15);
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    for (name, strategy) in [
        ("lookback", Strategy::LookbackPipeline),
        ("two_pass", Strategy::TwoPass),
    ] {
        let runner = ParallelRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 1 << 16,
                threads: 0,
                strategy,
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_function(name, |b| {
            b.iter(|| runner.run(black_box(&data)).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_speedup_int,
    bench_speedup_filter,
    bench_prefix_sum,
    bench_strategies
);
criterion_main!(benches);
