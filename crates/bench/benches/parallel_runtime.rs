//! Criterion benchmarks for the real multithreaded runtime: wall-clock
//! speedup of the chunked decoupled-look-back algorithm over the serial
//! loop, across thread counts, recurrence types, and correction-plan
//! modes. This is the reproduction's genuine (non-modelled) parallel
//! measurement. `PLR_BENCH_QUICK=1` shrinks every group to 1M elements
//! with few samples — the CI smoke mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use plr_core::plan::PlanMode;
use plr_core::serial;
use plr_core::signature::Signature;
use plr_parallel::{ParallelRunner, RunnerConfig, Strategy};
use std::hint::black_box;

fn quick() -> bool {
    std::env::var("PLR_BENCH_QUICK").is_ok()
}

fn int_input(n: usize) -> Vec<i64> {
    (0..n)
        .map(|i| ((i as i64).wrapping_mul(0x9E3779B9) % 41) - 20)
        .collect()
}

fn float_input(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i % 17) as f32) * 0.25 - 2.0).collect()
}

fn bench_speedup_int(c: &mut Criterion) {
    let n = if quick() { 1 << 20 } else { 1 << 23 };
    let data = int_input(n);
    let mut g = c.benchmark_group(format!("parallel_order2_{}M", n >> 20));
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(if quick() { 10 } else { 15 });
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    g.bench_function("serial", |b| {
        b.iter(|| serial::run(black_box(&sig), black_box(&data)));
    });
    let threads: &[usize] = if quick() { &[2] } else { &[1, 2, 4, 8] };
    for &threads in threads {
        let runner = ParallelRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 1 << 16,
                threads,
                strategy: Strategy::default(),
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_function(BenchmarkId::new("plr", threads), |b| {
            b.iter(|| runner.run(black_box(&data)).unwrap());
        });
    }
    g.finish();
}

fn bench_speedup_filter(c: &mut Criterion) {
    let n = if quick() { 1 << 20 } else { 1 << 23 };
    let data = float_input(n);
    let mut g = c.benchmark_group(format!("parallel_lowpass2_{}M", n >> 20));
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(if quick() { 10 } else { 15 });
    let sig: Signature<f32> = "0.04:1.6,-0.64".parse().unwrap();
    g.bench_function("serial", |b| {
        b.iter(|| serial::run(black_box(&sig), black_box(&data)));
    });
    let threads: &[usize] = if quick() { &[2] } else { &[2, 8] };
    for &threads in threads {
        let runner = ParallelRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 1 << 16,
                threads,
                strategy: Strategy::default(),
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_function(BenchmarkId::new("plr", threads), |b| {
            b.iter(|| runner.run(black_box(&data)).unwrap());
        });
    }
    g.finish();
}

fn bench_prefix_sum(c: &mut Criterion) {
    // 16M full / 1M quick: bandwidth-bound on a CPU too.
    let n = if quick() { 1 << 20 } else { 1 << 24 };
    let data = int_input(n);
    let mut g = c.benchmark_group(format!("parallel_prefix_sum_{}M", n >> 20));
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(if quick() { 10 } else { 15 });
    let sig: Signature<i64> = "1:1".parse().unwrap();
    g.bench_function("serial", |b| {
        b.iter(|| serial::run(black_box(&sig), black_box(&data)));
    });
    let runner = ParallelRunner::with_config(
        sig,
        RunnerConfig {
            chunk_size: 1 << 17,
            threads: 0,
            strategy: Strategy::default(),
            ..Default::default()
        },
    )
    .unwrap();
    g.bench_function("plr_all_cores", |b| {
        b.iter(|| runner.run(black_box(&data)).unwrap());
    });
    g.finish();
}

fn bench_strategies(c: &mut Criterion) {
    // Look-back pipeline (single pass over the data, spins on carries) vs
    // two-pass (barrier + sequential chain, touches the data twice).
    let n = if quick() { 1 << 20 } else { 1 << 23 };
    let data = int_input(n);
    let mut g = c.benchmark_group(format!("strategy_order2_{}M", n >> 20));
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(if quick() { 10 } else { 15 });
    let sig: Signature<i64> = "1:2,-1".parse().unwrap();
    for (name, strategy) in [
        ("lookback", Strategy::LookbackPipeline),
        ("two_pass", Strategy::TwoPass),
    ] {
        let runner = ParallelRunner::with_config(
            sig.clone(),
            RunnerConfig {
                chunk_size: 1 << 16,
                threads: 0,
                strategy,
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_function(name, |b| {
            b.iter(|| runner.run(black_box(&data)).unwrap());
        });
    }
    g.finish();
}

fn bench_plan_modes(c: &mut Criterion) {
    // Stable IIR, the workload the correction-plan layer exists for: with
    // PlanMode::Auto the 0.8-pole factor table underflows a few hundred
    // elements in, the plan truncates to that prefix, and every carry
    // fix-up collapses to a copy; PlanMode::Dense is the same runner with
    // the full-table correction the seed shipped. The gap between the two
    // `plr` lines — on identical chunking and threads — is the plan
    // layer's whole contribution.
    let n = if quick() { 1 << 20 } else { 1 << 23 };
    let data = float_input(n);
    let mut g = c.benchmark_group(format!("plan_stable_iir_{}M", n >> 20));
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(if quick() { 10 } else { 15 });
    let sig: Signature<f32> = "0.2:0.8".parse().unwrap();
    g.bench_function("serial", |b| {
        b.iter(|| serial::run(black_box(&sig), black_box(&data)));
    });
    // Two chunk sizes: 64 Ki keeps the dense factor table L2-resident
    // (the correction pass is nearly free either way, so the gap is
    // small); n/8 pushes the dense table out of cache, where the dense
    // baseline pays a DRAM-bandwidth pass the truncated plan skips.
    for chunk in [1 << 16, n / 8] {
        for (name, mode) in [("plr_auto", PlanMode::Auto), ("plr_dense", PlanMode::Dense)] {
            let runner = ParallelRunner::with_config(
                sig.clone(),
                RunnerConfig {
                    chunk_size: chunk,
                    threads: 0,
                    strategy: Strategy::default(),
                    plan: mode,
                    ..Default::default()
                },
            )
            .unwrap();
            g.bench_function(BenchmarkId::new(name, chunk), |b| {
                b.iter(|| runner.run(black_box(&data)).unwrap());
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_speedup_int,
    bench_speedup_filter,
    bench_prefix_sum,
    bench_strategies,
    bench_plan_modes
);
criterion_main!(benches);
