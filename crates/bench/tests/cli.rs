//! End-to-end tests of the `reproduce` harness binary.

use std::process::Command;

fn reproduce(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("reproduce runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn table1_prints_the_catalog() {
    let (ok, stdout, _) = reproduce(&["table1"]);
    assert!(ok);
    assert!(stdout.contains("(1: 1)"));
    assert!(stdout.contains("a 3-stage high-pass filter"));
}

#[test]
fn figure_output_has_all_series_and_sizes() {
    let (ok, stdout, _) = reproduce(&["fig1"]);
    assert!(ok, "{stdout}");
    for needle in ["memcpy", "CUB", "SAM", "Scan", "PLR", "2^14", "2^30"] {
        assert!(stdout.contains(needle), "missing {needle}");
    }
}

#[test]
fn csv_files_are_written() {
    let dir = std::env::temp_dir().join(format!("plr-csv-{}", std::process::id()));
    let (ok, _, _) = reproduce(&["fig1", "table2", "--csv", dir.to_str().unwrap()]);
    assert!(ok);
    let fig = std::fs::read_to_string(dir.join("fig1.csv")).unwrap();
    assert!(fig.starts_with("n,memcpy,CUB,SAM,Scan,PLR"));
    let table = std::fs::read_to_string(dir.join("table2.csv")).unwrap();
    assert!(table.contains("order 1"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_items_fail_with_usage() {
    let (ok, _, stderr) = reproduce(&["fig99"]);
    assert!(!ok);
    assert!(stderr.contains("unknown item"));
    let (ok, _, stderr) = reproduce(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}
