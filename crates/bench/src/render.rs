//! Plain-text and CSV rendering of figures and tables.

use crate::figures::Figure;
use crate::tables::Table;
use std::fmt::Write as _;

/// Renders a figure as a fixed-width text table (sizes × series).
pub fn figure_text(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", fig.title);
    let _ = writeln!(out, "(throughput in billion words per second)");
    let _ = write!(out, "{:>12}", "n");
    for s in &fig.series {
        let _ = write!(out, "{:>18}", s.name);
    }
    let _ = writeln!(out);
    for (idx, &n) in fig.sizes.iter().enumerate() {
        let label = match &fig.xlabels {
            Some(labels) => labels[idx].clone(),
            None => format_size(n),
        };
        let _ = write!(out, "{:>12}", label);
        for s in &fig.series {
            match s.points.iter().find(|(size, _)| *size == n) {
                Some((_, v)) => {
                    let _ = write!(out, "{:>18.2}", v);
                }
                None => {
                    let _ = write!(out, "{:>18}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a figure as CSV (`n,series1,series2,…`).
pub fn figure_csv(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = write!(out, "n");
    for s in &fig.series {
        let _ = write!(out, ",{}", s.name);
    }
    let _ = writeln!(out);
    for &n in &fig.sizes {
        let _ = write!(out, "{n}");
        for s in &fig.series {
            match s.points.iter().find(|(size, _)| *size == n) {
                Some((_, v)) => {
                    let _ = write!(out, ",{v:.4}");
                }
                None => {
                    let _ = write!(out, ",");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a table as fixed-width text.
pub fn table_text(table: &Table) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", table.title);
    let label_width = table
        .rows
        .iter()
        .map(|(l, _)| l.len())
        .chain(std::iter::once(8))
        .max()
        .unwrap_or(8)
        + 2;
    let col_width = table
        .columns
        .iter()
        .map(|c| c.len())
        .chain(
            table
                .rows
                .iter()
                .flat_map(|(_, cells)| cells.iter().map(|c| c.len())),
        )
        .max()
        .unwrap_or(8)
        + 2;
    let _ = write!(out, "{:>label_width$}", "");
    for c in &table.columns {
        let _ = write!(out, "{c:>col_width$}");
    }
    let _ = writeln!(out);
    for (label, cells) in &table.rows {
        let _ = write!(out, "{label:>label_width$}");
        for cell in cells {
            let _ = write!(out, "{cell:>col_width$}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Formats a size as a power of two when exact (`2^20`), decimal otherwise.
fn format_size(n: usize) -> String {
    if n.is_power_of_two() {
        format!("2^{}", n.trailing_zeros())
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Series;

    fn tiny_figure() -> Figure {
        Figure {
            title: "Figure T".to_owned(),
            sizes: vec![16, 32],
            xlabels: None,
            series: vec![
                Series {
                    name: "a".into(),
                    points: vec![(16, 1.0), (32, 2.0)],
                },
                Series {
                    name: "b".into(),
                    points: vec![(32, 3.0)],
                },
            ],
        }
    }

    #[test]
    fn text_rendering_marks_missing_points() {
        let txt = figure_text(&tiny_figure());
        assert!(txt.contains("Figure T"));
        assert!(txt.contains('-'), "missing point must render as -:\n{txt}");
        assert!(txt.contains("2^4"));
    }

    #[test]
    fn csv_has_header_and_gaps() {
        let csv = figure_csv(&tiny_figure());
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "n,a,b");
        assert_eq!(lines.next().unwrap(), "16,1.0000,");
        assert_eq!(lines.next().unwrap(), "32,2.0000,3.0000");
    }

    #[test]
    fn table_rendering_aligns() {
        let t = Table {
            title: "T".into(),
            columns: vec!["x".into(), "yyyy".into()],
            rows: vec![("r1".into(), vec!["1".into(), "2".into()])],
        };
        let txt = table_text(&t);
        assert!(txt.contains("yyyy"));
        assert!(txt.contains("r1"));
    }

    #[test]
    fn size_formatting() {
        assert_eq!(format_size(1 << 14), "2^14");
        assert_eq!(format_size(100), "100");
    }
}
