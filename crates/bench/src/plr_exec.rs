//! PLR wrapped in the common executor interface used by the harness.

use plr_baselines::executor::RecurrenceExecutor;
use plr_codegen::exec::{self, ExecOptions};
use plr_codegen::lower::{lower, LowerOptions};
use plr_codegen::plan::Optimizations;
use plr_core::element::Element;
use plr_core::error::EngineError;
use plr_core::signature::Signature;
use plr_sim::{DeviceConfig, RunReport};

/// Maximum supported input: 4 GB of words (paper Section 3).
const MAX_LEN: usize = 1 << 30;

/// The PLR executor: compile (lower) per input size, then run/estimate on
/// the machine model.
#[derive(Debug, Clone, Copy)]
pub struct PlrExecutor {
    /// Optimization toggles (Figure 10 compares all-on vs all-off).
    pub opts: Optimizations,
}

impl Default for PlrExecutor {
    fn default() -> Self {
        PlrExecutor {
            opts: Optimizations::all(),
        }
    }
}

impl PlrExecutor {
    /// The all-optimizations-off variant for Figure 10.
    pub fn unoptimized() -> Self {
        PlrExecutor {
            opts: Optimizations::none(),
        }
    }

    fn lower_options(&self) -> LowerOptions {
        LowerOptions {
            opts: self.opts,
            ..Default::default()
        }
    }
}

/// PLR needs the input and output arrays plus a few MB of factor/carry
/// buffers; reject inputs whose buffers exceed the device memory.
fn check_device_budget<T: Element>(n: usize, device: &DeviceConfig) -> Result<(), EngineError> {
    let buffers = 2 * n as u64 * T::BYTES as u64 + (4 << 20);
    if !device.fits(buffers) {
        return Err(EngineError::InputTooLarge {
            len: n,
            max: device.max_elements(2 * T::BYTES as u64),
        });
    }
    Ok(())
}

impl<T: Element> RecurrenceExecutor<T> for PlrExecutor {
    fn name(&self) -> &'static str {
        if self.opts == Optimizations::none() {
            "PLR (no opt)"
        } else {
            "PLR"
        }
    }

    fn supports(&self, _signature: &Signature<T>, n: usize) -> Result<(), EngineError> {
        if n > MAX_LEN {
            return Err(EngineError::InputTooLarge {
                len: n,
                max: MAX_LEN,
            });
        }
        Ok(())
    }

    fn run(
        &self,
        signature: &Signature<T>,
        input: &[T],
        device: &DeviceConfig,
    ) -> Result<RunReport<T>, EngineError> {
        RecurrenceExecutor::<T>::supports(self, signature, input.len())?;
        check_device_budget::<T>(input.len(), device)?;
        let plan = lower(signature, input.len(), device, &self.lower_options());
        Ok(exec::execute(&plan, input, device, &ExecOptions::default()))
    }

    fn estimate(
        &self,
        signature: &Signature<T>,
        n: usize,
        device: &DeviceConfig,
    ) -> Result<RunReport<T>, EngineError> {
        RecurrenceExecutor::<T>::supports(self, signature, n)?;
        check_device_budget::<T>(n, device)?;
        let plan = lower(signature, n, device, &self.lower_options());
        Ok(exec::estimate(&plan, n, device, &ExecOptions::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::{serial, validate::validate};

    #[test]
    fn behaves_like_the_direct_codegen_path() {
        let device = DeviceConfig::titan_x();
        let sig: Signature<i64> = "1:2,-1".parse().unwrap();
        let input: Vec<i64> = (0..20_000).map(|i| (i % 9) as i64 - 4).collect();
        let r = PlrExecutor::default().run(&sig, &input, &device).unwrap();
        validate(&serial::run(&sig, &input), &r.output, 0.0).unwrap();
    }

    #[test]
    fn caps_at_2_pow_30() {
        let sig: Signature<i32> = "1:1".parse().unwrap();
        let e = PlrExecutor::default();
        assert!(RecurrenceExecutor::<i32>::supports(&e, &sig, 1 << 30).is_ok());
        assert!(RecurrenceExecutor::<i32>::supports(&e, &sig, (1 << 30) + 1).is_err());
    }
}
