//! Generation of every figure from the paper's evaluation section.
//!
//! Each figure is a set of throughput-vs-input-size series (Figures 1–9)
//! or an optimization on/off bar pair per recurrence (Figure 10). Series
//! use the executors' cost estimates on the machine model; sizes sweep
//! `2^14 … 2^30` in powers of two, exactly as in the paper. An executor
//! that cannot run a size (memory cap, unsupported signature) simply has
//! no point there — visible in the paper's plots as series that end early.

use crate::plr_exec::PlrExecutor;
use plr_baselines::executor::RecurrenceExecutor;
use plr_baselines::{memcpy, Alg3, Cub, Rec, Sam, Scan};
use plr_core::element::Element;
use plr_core::signature::Signature;
use plr_core::{filters, prefix};
use plr_sim::{CostModel, DeviceConfig};

/// The paper's size sweep: 2^14 … 2^30 words.
pub fn size_sweep() -> Vec<usize> {
    (14..=30).map(|p| 1usize << p).collect()
}

/// One throughput series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Executor name ("memcpy", "CUB", …).
    pub name: String,
    /// `(n, billions of words per second)` points; unsupported sizes are
    /// absent.
    pub points: Vec<(usize, f64)>,
}

/// One figure: a title and its series.
#[derive(Debug, Clone)]
pub struct Figure {
    /// e.g. `"Figure 1. Prefix-sum throughput"`.
    pub title: String,
    /// Sizes swept (x-axis).
    pub sizes: Vec<usize>,
    /// Optional custom x-axis labels (Figure 10 labels recurrences, not
    /// sizes); when `None`, sizes are rendered as powers of two.
    pub xlabels: Option<Vec<String>>,
    /// The series in the paper's legend order.
    pub series: Vec<Series>,
}

fn throughput_series<T: Element>(
    name: &str,
    exec: &dyn RecurrenceExecutor<T>,
    sig: &Signature<T>,
    sizes: &[usize],
    device: &DeviceConfig,
) -> Series {
    let model = CostModel::new(device.clone());
    let points = sizes
        .iter()
        .filter_map(|&n| {
            exec.estimate(sig, n, device)
                .ok()
                .map(|r| (n, r.throughput(&model) / 1e9))
        })
        .collect();
    Series {
        name: name.to_owned(),
        points,
    }
}

fn memcpy_series<T: Element>(sizes: &[usize], device: &DeviceConfig) -> Series {
    let model = CostModel::new(device.clone());
    let points = sizes
        .iter()
        .filter(|&&n| memcpy::fits::<T>(n, device))
        .map(|&n| (n, memcpy::estimate::<T>(n, device).throughput(&model) / 1e9))
        .collect();
    Series {
        name: "memcpy".to_owned(),
        points,
    }
}

/// Figures 1–5: integer prefix-sum figures (memcpy, CUB, SAM, Scan, PLR).
fn integer_figure(title: &str, sig: Signature<i32>, device: &DeviceConfig) -> Figure {
    let sizes = size_sweep();
    let series = vec![
        memcpy_series::<i32>(&sizes, device),
        throughput_series("CUB", &Cub, &sig, &sizes, device),
        throughput_series("SAM", &Sam, &sig, &sizes, device),
        throughput_series("Scan", &Scan, &sig, &sizes, device),
        throughput_series("PLR", &PlrExecutor::default(), &sig, &sizes, device),
    ];
    Figure {
        title: title.to_owned(),
        sizes,
        xlabels: None,
        series,
    }
}

/// Figures 6–8: float filter figures (memcpy, Alg3, Rec, Scan, PLR).
fn filter_figure(title: &str, sig: Signature<f64>, device: &DeviceConfig) -> Figure {
    let sizes = size_sweep();
    let sig32: Signature<f32> = sig.cast();
    let series = vec![
        memcpy_series::<f32>(&sizes, device),
        throughput_series("Alg3", &Alg3, &sig32, &sizes, device),
        throughput_series("Rec", &Rec, &sig32, &sizes, device),
        throughput_series("Scan", &Scan, &sig32, &sizes, device),
        throughput_series("PLR", &PlrExecutor::default(), &sig32, &sizes, device),
    ];
    Figure {
        title: title.to_owned(),
        sizes,
        xlabels: None,
        series,
    }
}

/// Generates one of the paper's figures by number (1–10).
///
/// # Panics
///
/// Panics for figure numbers outside 1–10.
pub fn figure(number: usize, device: &DeviceConfig) -> Figure {
    match number {
        1 => integer_figure(
            "Figure 1. Prefix-sum throughput",
            prefix::prefix_sum(),
            device,
        ),
        2 => integer_figure(
            "Figure 2. Two-tuple prefix-sum throughput",
            prefix::tuple_prefix_sum(2),
            device,
        ),
        3 => integer_figure(
            "Figure 3. Three-tuple prefix-sum throughput",
            prefix::tuple_prefix_sum(3),
            device,
        ),
        4 => integer_figure(
            "Figure 4. Second-order prefix-sum throughput",
            prefix::higher_order_prefix_sum(2),
            device,
        ),
        5 => integer_figure(
            "Figure 5. Third-order prefix-sum throughput",
            prefix::higher_order_prefix_sum(3),
            device,
        ),
        6 => filter_figure(
            "Figure 6. 1-stage low-pass filter throughput",
            filters::low_pass(0.8, 1),
            device,
        ),
        7 => filter_figure(
            "Figure 7. 2-stage low-pass filter throughput",
            filters::low_pass(0.8, 2),
            device,
        ),
        8 => filter_figure(
            "Figure 8. 3-stage low-pass filter throughput",
            filters::low_pass(0.8, 3),
            device,
        ),
        9 => figure9(device),
        10 => figure10(device),
        other => panic!("the paper has figures 1-10, not {other}"),
    }
}

/// Figure 9: high-pass filters — memcpy, Scan on the 1-stage filter, and
/// PLR on all three stages.
fn figure9(device: &DeviceConfig) -> Figure {
    let sizes = size_sweep();
    let hp = |stages| -> Signature<f32> { filters::high_pass(0.8, stages).cast() };
    let series = vec![
        memcpy_series::<f32>(&sizes, device),
        throughput_series("Scan1", &Scan, &hp(1), &sizes, device),
        throughput_series("PLR1", &PlrExecutor::default(), &hp(1), &sizes, device),
        throughput_series("PLR2", &PlrExecutor::default(), &hp(2), &sizes, device),
        throughput_series("PLR3", &PlrExecutor::default(), &hp(3), &sizes, device),
    ];
    Figure {
        title: "Figure 9. High-pass filter throughput".to_owned(),
        sizes,
        xlabels: None,
        series,
    }
}

/// Figure 10: PLR throughput with and without the correction-factor
/// optimizations, for all eleven Table 1 recurrences at the largest input.
fn figure10(device: &DeviceConfig) -> Figure {
    let n = 1usize << 30;
    let model = CostModel::new(device.clone());
    let mut on = Series {
        name: "optimizations on".to_owned(),
        points: Vec::new(),
    };
    let mut off = Series {
        name: "optimizations off".to_owned(),
        points: Vec::new(),
    };
    let mut sizes = Vec::new();
    let mut xlabels = Vec::new();
    for (idx, entry) in prefix::catalog().iter().enumerate() {
        let (t_on, t_off) = if entry.integral {
            let sig: Signature<i32> = entry.signature.cast();
            (
                PlrExecutor::default()
                    .estimate(&sig, n, device)
                    .unwrap()
                    .throughput(&model),
                PlrExecutor::unoptimized()
                    .estimate(&sig, n, device)
                    .unwrap()
                    .throughput(&model),
            )
        } else {
            let sig: Signature<f32> = entry.signature.cast();
            (
                PlrExecutor::default()
                    .estimate(&sig, n, device)
                    .unwrap()
                    .throughput(&model),
                PlrExecutor::unoptimized()
                    .estimate(&sig, n, device)
                    .unwrap()
                    .throughput(&model),
            )
        };
        // x-axis is the catalog index rather than a size sweep.
        sizes.push(idx);
        xlabels.push(entry.id.to_owned());
        on.points.push((idx, t_on / 1e9));
        off.points.push((idx, t_off / 1e9));
    }
    Figure {
        title: "Figure 10. PLR throughput with and without optimizations (n = 2^30)".to_owned(),
        sizes,
        xlabels: Some(xlabels),
        series: vec![on, off],
    }
}

/// Convenience: the value of `series` at size `n`, if present.
pub fn value_at(series: &Series, n: usize) -> Option<f64> {
    series
        .points
        .iter()
        .find(|(size, _)| *size == n)
        .map(|(_, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceConfig {
        DeviceConfig::titan_x()
    }

    fn series<'a>(fig: &'a Figure, name: &str) -> &'a Series {
        fig.series
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| {
                panic!(
                    "{} has series {:?}",
                    fig.title,
                    fig.series.iter().map(|s| &s.name).collect::<Vec<_>>()
                )
            })
    }

    #[test]
    fn fig1_everyone_reaches_memcpy_except_scan() {
        // Paper Section 6.1.1: CUB, SAM and PLR all reach the memory-copy
        // throughput on large prefix sums; Scan delivers about half.
        let fig = figure(1, &device());
        let n = 1 << 29; // largest size Scan still supports
        let mc = value_at(series(&fig, "memcpy"), n).unwrap();
        for name in ["CUB", "SAM", "PLR"] {
            let v = value_at(series(&fig, name), n).unwrap();
            assert!(v > 0.85 * mc, "{name}: {v:.1} vs memcpy {mc:.1}");
        }
        let scan = value_at(series(&fig, "Scan"), n).unwrap();
        assert!(
            scan < 0.6 * mc && scan > 0.35 * mc,
            "Scan {scan:.1} vs memcpy {mc:.1}"
        );
    }

    #[test]
    fn fig1_scan_stops_at_2_pow_29() {
        let fig = figure(1, &device());
        assert!(value_at(series(&fig, "Scan"), 1 << 29).is_some());
        assert!(value_at(series(&fig, "Scan"), 1 << 30).is_none());
    }

    #[test]
    fn fig2_plr_beats_cub_and_sam_on_large_tuples() {
        // Paper: on 2-tuples PLR is ~30% faster than the other two codes
        // for long sequences.
        let fig = figure(2, &device());
        let n = 1 << 30;
        let plr = value_at(series(&fig, "PLR"), n).unwrap();
        for name in ["CUB", "SAM"] {
            let v = value_at(series(&fig, name), n).unwrap();
            assert!(
                plr > 1.1 * v,
                "PLR {plr:.1} should beat {name} {v:.1} clearly"
            );
        }
    }

    #[test]
    fn fig4_sam_beats_plr_beats_cub_on_higher_order() {
        // Paper Section 6.1.3: SAM highest, PLR middle, CUB lowest
        // (ignoring Scan) on second-order prefix sums at large sizes.
        let fig = figure(4, &device());
        let n = 1 << 30;
        let sam = value_at(series(&fig, "SAM"), n).unwrap();
        let plr = value_at(series(&fig, "PLR"), n).unwrap();
        let cub = value_at(series(&fig, "CUB"), n).unwrap();
        assert!(sam > plr, "SAM {sam:.1} vs PLR {plr:.1}");
        assert!(plr > cub, "PLR {plr:.1} vs CUB {cub:.1}");
    }

    #[test]
    fn fig6_plr_overtakes_rec_beyond_the_l2() {
        // Paper Section 6.5: PLR starts outperforming Rec at ~1M entries,
        // the smallest size exceeding the L2 capacity.
        let fig = figure(6, &device());
        let big = 1 << 24;
        let plr = value_at(series(&fig, "PLR"), big).unwrap();
        let rec = value_at(series(&fig, "Rec"), big).unwrap();
        assert!(plr > rec, "at 2^24: PLR {plr:.1} vs Rec {rec:.1}");
    }

    #[test]
    fn fig6_alg3_and_rec_stop_at_their_caps() {
        let fig = figure(6, &device());
        assert!(value_at(series(&fig, "Alg3"), 1 << 29).is_some()); // 2 GB of f32
        assert!(value_at(series(&fig, "Alg3"), 1 << 30).is_none());
        assert!(value_at(series(&fig, "Rec"), 1 << 28).is_some()); // 1 GB of f32
        assert!(value_at(series(&fig, "Rec"), 1 << 29).is_none());
    }

    #[test]
    fn fig9_throughput_decreases_with_stages() {
        let fig = figure(9, &device());
        let n = 1 << 28;
        let p1 = value_at(series(&fig, "PLR1"), n).unwrap();
        let p2 = value_at(series(&fig, "PLR2"), n).unwrap();
        let p3 = value_at(series(&fig, "PLR3"), n).unwrap();
        assert!(
            p1 >= p2 && p2 >= p3,
            "stages should not speed things up: {p1:.1} {p2:.1} {p3:.1}"
        );
    }

    #[test]
    fn fig10_optimizations_never_hurt() {
        let fig = figure(10, &device());
        let on = &fig.series[0];
        let off = &fig.series[1];
        for (a, b) in on.points.iter().zip(&off.points) {
            assert!(
                a.1 >= b.1 * 0.999,
                "catalog entry {}: on {:.2} vs off {:.2}",
                a.0,
                a.1,
                b.1
            );
        }
    }

    #[test]
    fn every_series_ramps_up_with_size() {
        // Throughput must grow (weakly) from the smallest to the largest
        // supported size for every series of figures 1-9.
        for f in 1..=9 {
            let fig = figure(f, &device());
            for s in &fig.series {
                let first = s.points.first().unwrap().1;
                let last = s.points.last().unwrap().1;
                assert!(
                    last > first,
                    "{} / {}: no ramp ({first:.2} -> {last:.2})",
                    fig.title,
                    s.name
                );
            }
        }
    }
}
