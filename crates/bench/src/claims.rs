//! Machine-checkable verdicts on the paper's headline claims.
//!
//! `reproduce verdict` evaluates each claim against the regenerated data
//! and prints PASS/FAIL with the measured evidence — the executive summary
//! of EXPERIMENTS.md, computed live.

use crate::figures::{self, value_at, Figure};
use crate::tables;
use plr_sim::DeviceConfig;

/// The outcome of checking one claim.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Short claim name.
    pub claim: String,
    /// Where the paper states it.
    pub source: String,
    /// `true` when the reproduction supports the claim.
    pub pass: bool,
    /// The measured evidence (or the discrepancy).
    pub evidence: String,
}

fn series<'a>(fig: &'a Figure, name: &str) -> &'a figures::Series {
    fig.series
        .iter()
        .find(|s| s.name == name)
        .expect("series present")
}

/// Evaluates every headline claim. Slow-ish (regenerates several figures);
/// intended for the CLI, with the same checks enforced as unit tests.
pub fn verdicts(device: &DeviceConfig) -> Vec<Verdict> {
    let mut out = Vec::new();
    let n = 1usize << 30;

    let fig1 = figures::figure(1, device);
    let at = |fig: &Figure, name: &str, n: usize| value_at(series(fig, name), n);

    {
        let mc = at(&fig1, "memcpy", n).unwrap();
        let plr = at(&fig1, "PLR", n).unwrap();
        out.push(Verdict {
            claim: "prefix sums reach memory-copy throughput".into(),
            source: "abstract / §6.1.1".into(),
            pass: plr > 0.95 * mc,
            evidence: format!("PLR {plr:.1} vs memcpy {mc:.1} Gword/s at 2^30"),
        });
        let scan = at(&fig1, "Scan", 1 << 29).unwrap();
        let mc29 = at(&fig1, "memcpy", 1 << 29).unwrap();
        out.push(Verdict {
            claim: "Scan delivers about half the throughput".into(),
            source: "§6.1.1".into(),
            pass: (0.35..0.6).contains(&(scan / mc29)),
            evidence: format!("Scan/memcpy = {:.2} at 2^29", scan / mc29),
        });
    }

    {
        let fig2 = figures::figure(2, device);
        let plr = at(&fig2, "PLR", n).unwrap();
        let best = at(&fig2, "CUB", n)
            .unwrap()
            .max(at(&fig2, "SAM", n).unwrap());
        let adv = plr / best - 1.0;
        out.push(Verdict {
            claim: "PLR ~30% faster on 2-tuples at long sequences".into(),
            source: "§6.1.2".into(),
            pass: (0.20..0.40).contains(&adv),
            evidence: format!("advantage {:.0}%", adv * 100.0),
        });
    }

    {
        let fig4 = figures::figure(4, device);
        let sam = at(&fig4, "SAM", n).unwrap();
        let plr = at(&fig4, "PLR", n).unwrap();
        let cub = at(&fig4, "CUB", n).unwrap();
        out.push(Verdict {
            claim: "order 2: SAM > PLR > CUB, SAM ~50% ahead".into(),
            source: "§6.1.3".into(),
            pass: sam > plr && plr > cub && (0.35..0.65).contains(&(sam / plr - 1.0)),
            evidence: format!("SAM {sam:.1} / PLR {plr:.1} / CUB {cub:.1}"),
        });
    }

    {
        let fig6 = figures::figure(6, device);
        let cross = (14..=28).find(|&p| {
            let nn = 1usize << p;
            match (at(&fig6, "PLR", nn), at(&fig6, "Rec", nn)) {
                (Some(a), Some(b)) => a > b,
                _ => false,
            }
        });
        out.push(Verdict {
            claim: "PLR overtakes Rec near the L2 capacity (~1M)".into(),
            source: "§6.5".into(),
            pass: matches!(cross, Some(p) if (18..=21).contains(&p)),
            evidence: match cross {
                Some(p) => format!("crossover at 2^{p}"),
                None => "no crossover found".into(),
            },
        });
    }

    {
        let t3 = tables::table3(device);
        let col = |name: &str| t3.columns.iter().position(|c| c == name).unwrap();
        let plr: f64 = t3.rows[0].1[col("PLR")].parse().unwrap();
        let alg3: f64 = t3.rows[0].1[col("Alg3")].parse().unwrap();
        out.push(Verdict {
            claim: "PLR only pays cold misses; Alg3 reads the input twice".into(),
            source: "§6.5 / Table 3".into(),
            pass: (255.0..258.0).contains(&plr) && alg3 > 500.0,
            evidence: format!("PLR {plr:.1} MB, Alg3 {alg3:.1} MB at 2^26 words"),
        });
        let t2 = tables::table2(device);
        let col2 = |name: &str| t2.columns.iter().position(|c| c == name).unwrap();
        let scan3: f64 = t2.rows[2].1[col2("Scan")].parse().unwrap();
        out.push(Verdict {
            claim: "Scan needs 6 GB at order 3 (O(nk²) memory)".into(),
            source: "§6.4 / Table 2".into(),
            pass: (6000.0..6400.0).contains(&scan3),
            evidence: format!("Scan order-3 peak {scan3:.1} MB"),
        });
    }

    {
        let fig10 = figures::figure(10, device);
        let on = &fig10.series[0];
        let off = &fig10.series[1];
        let all_help = on
            .points
            .iter()
            .zip(&off.points)
            .all(|(a, b)| a.1 >= b.1 * 0.999);
        let order2_gain = {
            let i = 3; // catalog index of order2
            on.points[i].1 / off.points[i].1 - 1.0
        };
        out.push(Verdict {
            claim: "optimizations help everywhere, only ~3% on higher orders".into(),
            source: "§6.3 / Figure 10".into(),
            pass: all_help && order2_gain < 0.10,
            evidence: format!("order-2 gain {:.0}%", order2_gain * 100.0),
        });
    }

    out
}

/// Renders verdicts as a fixed-width table.
pub fn render(verdicts: &[Verdict]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:<6} {:<55} {:<18} evidence", "", "claim", "source");
    for v in verdicts {
        let _ = writeln!(
            out,
            "{:<6} {:<55} {:<18} {}",
            if v.pass { "PASS" } else { "FAIL" },
            v.claim,
            v.source,
            v.evidence
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_headline_claim_passes() {
        let vs = verdicts(&DeviceConfig::titan_x());
        assert!(vs.len() >= 7);
        for v in &vs {
            assert!(
                v.pass,
                "claim failed: {} ({}) — {}",
                v.claim, v.source, v.evidence
            );
        }
    }

    #[test]
    fn rendering_is_tabular() {
        let vs = vec![Verdict {
            claim: "c".into(),
            source: "s".into(),
            pass: true,
            evidence: "e".into(),
        }];
        let text = render(&vs);
        assert!(text.contains("PASS"));
        assert!(text.contains("evidence"));
    }
}
