//! Generation of the paper's tables.
//!
//! * Table 1 — the signature catalog (plr-core's `prefix::catalog`);
//! * Table 2 — total GPU memory usage at 67,108,864 words (2^26), orders
//!   1–3, for PLR, CUB, SAM, Scan, Alg3, Rec, and memcpy;
//! * Table 3 — L2 read misses (in MB) for the same runs.
//!
//! The paper notes both metrics depend only on the recurrence order, not
//! the coefficients or the data type — so order-`k` prefix sums stand in
//! for the prefix-family codes and `k`-stage low-pass filters for the
//! image-filtering codes, exactly as the paper's table rows do.

use crate::plr_exec::PlrExecutor;
use plr_baselines::executor::RecurrenceExecutor;
use plr_baselines::{memcpy, Alg3, Cub, Rec, Sam, Scan};
use plr_core::signature::Signature;
use plr_core::{filters, prefix};
use plr_sim::DeviceConfig;

/// The input size of Tables 2 and 3.
pub const TABLE_N: usize = 1 << 26;

/// One rendered table: column names plus rows of cells (first cell is the
/// row label; `"-"` marks unsupported combinations).
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row label + one cell per column.
    pub rows: Vec<(String, Vec<String>)>,
}

/// Table 1: the signature catalog.
pub fn table1() -> Table {
    let rows = prefix::catalog()
        .into_iter()
        .map(|e| {
            // Display through f32, which rounds the exact cascade products
            // back to the paper's tidy coefficients.
            let display: Signature<f32> = e.signature.cast();
            (display.to_string(), vec![e.description.to_owned()])
        })
        .collect();
    Table {
        title: "Table 1. Signatures of a Few Linear Recurrences".to_owned(),
        columns: vec!["Computation".to_owned()],
        rows,
    }
}

fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// The per-order metric of one executor, or `None` if unsupported.
type MetricFn<'a> = &'a dyn Fn(usize) -> Option<(u64, u64)>; // (peak_bytes, l2_miss_bytes)

fn metric_rows(device: &DeviceConfig, which: fn((u64, u64)) -> u64) -> Vec<(String, Vec<String>)> {
    // Order-k via the k-tuple prefix sum: the paper's CUB/SAM rows show
    // ~256 MB of misses at every order, which is only consistent with the
    // single-pass (tuple) variants — the iterated higher-order runs would
    // re-stream the data once per pass.
    let int_sig = |k: usize| -> Signature<i32> { prefix::tuple_prefix_sum(k) };
    let flt_sig = |k: usize| -> Signature<f32> { filters::low_pass(0.8, k as u32).cast() };

    let plr: MetricFn<'_> = &|k| {
        let r = PlrExecutor::default()
            .estimate(&int_sig(k), TABLE_N, device)
            .ok()?;
        Some((r.peak_bytes, r.counters.l2_read_miss_bytes))
    };
    let cub: MetricFn<'_> = &|k| {
        let r = Cub.estimate(&int_sig(k), TABLE_N, device).ok()?;
        Some((r.peak_bytes, r.counters.l2_read_miss_bytes))
    };
    let sam: MetricFn<'_> = &|k| {
        let r = Sam.estimate(&int_sig(k), TABLE_N, device).ok()?;
        Some((r.peak_bytes, r.counters.l2_read_miss_bytes))
    };
    let scan: MetricFn<'_> = &|k| {
        let r = Scan.estimate(&int_sig(k), TABLE_N, device).ok()?;
        Some((r.peak_bytes, r.counters.l2_read_miss_bytes))
    };
    let alg3: MetricFn<'_> = &|k| {
        let r = Alg3.estimate(&flt_sig(k), TABLE_N, device).ok()?;
        Some((r.peak_bytes, r.counters.l2_read_miss_bytes))
    };
    let rec: MetricFn<'_> = &|k| {
        let r = Rec.estimate(&flt_sig(k), TABLE_N, device).ok()?;
        Some((r.peak_bytes, r.counters.l2_read_miss_bytes))
    };
    let executors: [(&str, MetricFn<'_>); 6] = [
        ("PLR", plr),
        ("CUB", cub),
        ("SAM", sam),
        ("Scan", scan),
        ("Alg3", alg3),
        ("Rec", rec),
    ];

    (1..=3)
        .map(|k| {
            let cells = executors
                .iter()
                .map(|(_, f)| f(k).map_or_else(|| "-".to_owned(), |m| mb(which(m))))
                .collect();
            (format!("order {k}"), cells)
        })
        .collect()
}

/// Table 2: total GPU memory usage in megabytes at 2^26 words.
pub fn table2(device: &DeviceConfig) -> Table {
    let mut rows = metric_rows(device, |(peak, _)| peak);
    // The memcpy column is order-independent; append it to every row.
    let mc = memcpy::estimate::<i32>(TABLE_N, device).peak_bytes;
    for (_, cells) in &mut rows {
        cells.push(mb(mc));
    }
    Table {
        title: format!("Table 2. Total GPU Memory Usage in Megabytes (n = {TABLE_N})"),
        columns: ["PLR", "CUB", "SAM", "Scan", "Alg3", "Rec", "memcpy"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// Table 3: L2 cache read misses converted into megabytes at 2^26 words.
pub fn table3(device: &DeviceConfig) -> Table {
    Table {
        title: format!("Table 3. L2 Cache Read Misses Converted into Megabytes (n = {TABLE_N})"),
        columns: ["PLR", "CUB", "SAM", "Scan", "Alg3", "Rec"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows: metric_rows(device, |(_, l2)| l2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceConfig {
        DeviceConfig::titan_x()
    }

    fn cell(t: &Table, row: usize, col_name: &str) -> f64 {
        let col = t.columns.iter().position(|c| c == col_name).unwrap();
        t.rows[row].1[col].parse().unwrap()
    }

    #[test]
    fn table1_lists_all_eleven() {
        let t = table1();
        assert_eq!(t.rows.len(), 11);
        assert_eq!(t.rows[0].0, "(1: 1)");
    }

    #[test]
    fn table2_reproduces_the_paper_within_tolerance() {
        // Paper values (MB): rows are orders 1-3.
        let paper: [[(&str, f64); 7]; 3] = [
            [
                ("PLR", 623.5),
                ("CUB", 623.5),
                ("SAM", 622.5),
                ("Scan", 1135.5),
                ("Alg3", 895.8),
                ("Rec", 638.5),
                ("memcpy", 621.5),
            ],
            [
                ("PLR", 623.5),
                ("CUB", 623.5),
                ("SAM", 622.5),
                ("Scan", 3188.8),
                ("Alg3", 911.8),
                ("Rec", 654.5),
                ("memcpy", 621.5),
            ],
            [
                ("PLR", 624.5),
                ("CUB", 623.5),
                ("SAM", 622.5),
                ("Scan", 6278.9),
                ("Alg3", 927.8),
                ("Rec", 670.5),
                ("memcpy", 621.5),
            ],
        ];
        let t = table2(&device());
        for (row, entries) in paper.iter().enumerate() {
            for (name, want) in entries {
                let got = cell(&t, row, name);
                let rel = (got - want).abs() / want;
                assert!(
                    rel < 0.03,
                    "order {} {name}: {got:.1} vs paper {want:.1}",
                    row + 1
                );
            }
        }
    }

    #[test]
    fn table3_reproduces_the_paper_within_tolerance() {
        // Paper values (MB): cold input misses dominate for the
        // communication-efficient codes; Scan and the image codes multiply.
        let paper: [[(&str, f64); 6]; 3] = [
            [
                ("PLR", 256.1),
                ("CUB", 256.5),
                ("SAM", 256.2),
                ("Scan", 512.3),
                ("Alg3", 550.6),
                ("Rec", 528.3),
            ],
            [
                ("PLR", 256.2),
                ("CUB", 256.1),
                ("SAM", 256.6),
                ("Scan", 1537.1),
                ("Alg3", 591.3),
                ("Rec", 545.3),
            ],
            [
                ("PLR", 256.4),
                ("CUB", 256.2),
                ("SAM", 256.8),
                ("Scan", 3074.1),
                ("Alg3", 632.0),
                ("Rec", 562.5),
            ],
        ];
        let t = table3(&device());
        for (row, entries) in paper.iter().enumerate() {
            for (name, want) in entries {
                let got = cell(&t, row, name);
                let rel = (got - want).abs() / want;
                // Within 10% for the image codes' fuzzier extras, 3% for
                // the rest.
                let tol = if *name == "Alg3" || *name == "Rec" {
                    0.10
                } else {
                    0.03
                };
                assert!(
                    rel < tol,
                    "order {} {name}: {got:.1} vs paper {want:.1}",
                    row + 1
                );
            }
        }
    }

    #[test]
    fn communication_efficient_codes_only_pay_cold_misses() {
        // Paper Section 6.5: PLR, CUB and SAM incur less than one extra
        // megabyte of read misses beyond the 256 MB cold input stream.
        let t = table3(&device());
        for row in 0..3 {
            for name in ["PLR", "CUB", "SAM"] {
                let got = cell(&t, row, name);
                assert!(
                    (256.0..257.5).contains(&got),
                    "order {} {name}: {got:.1} MB",
                    row + 1
                );
            }
        }
    }
}
