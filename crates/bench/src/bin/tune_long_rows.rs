//! Chunk-size sweep behind `BatchRunner::run_long_rows`' dispatch formula.
//!
//! The long-rows path picks one chunk size per call from the row width and
//! the worker count; the constants in that formula were last tuned before
//! the register-blocked serial kernels landed, which made the local solve
//! ~3x faster and shifted the balance toward larger chunks (fixed per-chunk
//! costs — ticket claim, carry publication, two timing reads, the O(k²)
//! fix-up — stopped being small next to the solve). This bin regenerates
//! the sweep the current constants were chosen from; results are recorded
//! in EXPERIMENTS.md ("Long-rows chunk dispatch").
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p plr-bench --bin tune_long_rows [-- --kernel <tier>]
//! ```
//!
//! `--kernel scalar|blocked|simd|auto` pins the serial solve kernel for
//! the whole sweep (same knob as the `PLR_KERNEL` env var), so the
//! dispatch band can be re-tuned per kernel tier: the SIMD solve shifts
//! the per-chunk fixed-cost balance exactly the way the blocked kernels
//! did when these constants were last revisited.

use plr_core::signature::Signature;
use plr_core::{set_kernel_override, KernelTier};
use plr_parallel::{ParallelRunner, RunnerConfig};
use std::hint::black_box;
use std::time::Instant;

/// Median-of-`reps` wall time for one in-place run over `data`.
fn time_run<T: plr_core::Element>(runner: &ParallelRunner<T>, data: &[T], reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let mut buf = data.to_vec();
            let start = Instant::now();
            runner.run_in_place(black_box(&mut buf)).unwrap();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn sweep<T: plr_core::Element>(label: &str, sig_text: &str, widths: &[usize], threads: &[usize])
where
    Signature<T>: std::str::FromStr,
    <Signature<T> as std::str::FromStr>::Err: std::fmt::Debug,
{
    let sig: Signature<T> = sig_text.parse().unwrap();
    println!("\n== {label} ({sig_text}) ==");
    println!(
        "{:>9} {:>7} | {:>9} {:>12} | best",
        "width", "thr", "chunk", "M elems/s"
    );
    for &width in widths {
        let data: Vec<T> = (0..width)
            .map(|i| T::from_i32(((i * 29) % 19) as i32 - 9))
            .collect();
        for &t in threads {
            let mut best = (0usize, 0.0f64);
            let mut rows = Vec::new();
            for shift in [6usize, 8, 10, 12, 14, 16] {
                let chunk = 1usize << shift;
                if chunk >= width {
                    break;
                }
                let runner = ParallelRunner::with_config(
                    sig.clone(),
                    RunnerConfig {
                        chunk_size: chunk,
                        threads: t,
                        ..Default::default()
                    },
                )
                .unwrap();
                let secs = time_run(&runner, &data, 5);
                let meps = width as f64 / secs / 1e6;
                if meps > best.1 {
                    best = (chunk, meps);
                }
                rows.push((chunk, meps));
            }
            for (chunk, meps) in &rows {
                let mark = if *chunk == best.0 { "  <-- best" } else { "" };
                println!("{width:>9} {t:>7} | {chunk:>9} {meps:>12.1} |{mark}");
            }
        }
    }
}

/// Parses `--kernel <tier>` (or `--kernel=<tier>`) from the argument
/// list; anything else is rejected with a usage message.
fn parse_kernel_arg() -> Option<KernelTier> {
    let mut args = std::env::args().skip(1);
    let mut tier = None;
    while let Some(arg) = args.next() {
        let value = if arg == "--kernel" {
            args.next().unwrap_or_else(|| usage("missing tier"))
        } else if let Some(v) = arg.strip_prefix("--kernel=") {
            v.to_string()
        } else {
            usage(&format!("unknown argument {arg:?}"));
        };
        tier = Some(match value.as_str() {
            "scalar" => KernelTier::Scalar,
            "blocked" => KernelTier::Blocked,
            "simd" => KernelTier::Simd,
            "auto" => KernelTier::Auto,
            other => usage(&format!("unknown kernel tier {other:?}")),
        });
    }
    tier
}

fn usage(problem: &str) -> ! {
    eprintln!("{problem}\nusage: tune_long_rows [--kernel scalar|blocked|simd|auto]");
    std::process::exit(2);
}

fn main() {
    if let Some(tier) = parse_kernel_arg() {
        set_kernel_override(Some(tier));
        println!("(kernel tier forced: {tier:?})");
    }
    let widths = [1 << 18, 1 << 20, 1 << 22];
    let threads = [1usize, 2, 4];
    sweep::<i64>("order-2 prefix sum, i64", "1:2,-1", &widths, &threads);
    sweep::<f32>(
        "stable IIR, f32 (truncated plan)",
        "0.2:0.8",
        &widths,
        &threads,
    );
    sweep::<f64>("2-pole low-pass, f64", "0.04:1.6,-0.64", &widths, &threads);
}
