//! `reproduce` — regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce all                 # every figure and table, text to stdout
//! reproduce fig1 fig10 table2   # selected items
//! reproduce ablations           # design-choice sweeps (x, shared budget,
//!                               # look-back delay, pipeline depth, device)
//! reproduce all --csv out/      # additionally write CSV files
//! ```

use plr_bench::{figures, render, tables};
use plr_sim::DeviceConfig;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" {
        eprintln!(
            "usage: reproduce [all | fig1..fig10 | table1..table3 | ablations | verdict]... [--csv <dir>]\n\
             regenerates the paper's evaluation artifacts on the machine model"
        );
        return ExitCode::FAILURE;
    }

    let mut items: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--csv" {
            match it.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--csv needs a directory");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            items.push(a);
        }
    }
    if items.iter().any(|i| i == "all") {
        items = (1..=10)
            .map(|f| format!("fig{f}"))
            .chain((1..=3).map(|t| format!("table{t}")))
            .collect();
    }

    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let device = DeviceConfig::titan_x();
    println!(
        "# PLR paper reproduction — modelled device: {}\n",
        device.name
    );
    for item in &items {
        let ok = emit(item, &device, csv_dir.as_deref());
        if !ok {
            eprintln!("unknown item `{item}` (fig1..fig10, table1..table3, all)");
            return ExitCode::FAILURE;
        }
        println!();
    }
    ExitCode::SUCCESS
}

fn emit(item: &str, device: &DeviceConfig, csv_dir: Option<&std::path::Path>) -> bool {
    if let Some(num) = item
        .strip_prefix("fig")
        .and_then(|s| s.parse::<usize>().ok())
    {
        if !(1..=10).contains(&num) {
            return false;
        }
        let fig = figures::figure(num, device);
        print!("{}", render::figure_text(&fig));
        if let Some(dir) = csv_dir {
            let path = dir.join(format!("fig{num}.csv"));
            if let Err(e) = std::fs::write(&path, render::figure_csv(&fig)) {
                eprintln!("cannot write {}: {e}", path.display());
            } else {
                println!("(csv written to {})", path.display());
            }
        }
        return true;
    }
    if item == "ablations" {
        emit_ablations(device, csv_dir);
        return true;
    }
    if item == "verdict" {
        let vs = plr_bench::claims::verdicts(device);
        print!("{}", plr_bench::claims::render(&vs));
        let failed = vs.iter().filter(|v| !v.pass).count();
        println!(
            "\n{} of {} headline claims reproduced",
            vs.len() - failed,
            vs.len()
        );
        return true;
    }
    if let Some(num) = item
        .strip_prefix("table")
        .and_then(|s| s.parse::<usize>().ok())
    {
        let table = match num {
            1 => tables::table1(),
            2 => tables::table2(device),
            3 => tables::table3(device),
            _ => return false,
        };
        print!("{}", render::table_text(&table));
        if let Some(dir) = csv_dir {
            let path = dir.join(format!("table{num}.csv"));
            let mut csv = String::from("row");
            for c in &table.columns {
                csv.push(',');
                csv.push_str(c);
            }
            csv.push('\n');
            for (label, cells) in &table.rows {
                csv.push_str(label);
                for cell in cells {
                    csv.push(',');
                    csv.push_str(cell);
                }
                csv.push('\n');
            }
            if std::fs::write(&path, csv).is_ok() {
                println!("(csv written to {})", path.display());
            }
        }
        return true;
    }
    false
}

fn emit_ablations(device: &DeviceConfig, csv_dir: Option<&std::path::Path>) {
    use plr_bench::ablation;
    use plr_core::prefix;

    let figs = [
        ablation::ablation_x(&prefix::prefix_sum::<i32>(), 1 << 24, device),
        ablation::ablation_x(&prefix::higher_order_prefix_sum::<i32>(2), 1 << 24, device),
        ablation::ablation_shared_budget(
            &prefix::higher_order_prefix_sum::<i32>(2),
            1 << 24,
            device,
        ),
        ablation::ablation_lookback(&prefix::higher_order_prefix_sum::<i64>(2), 300_000, device),
        ablation::ablation_pipeline_depth(&prefix::prefix_sum::<i32>(), 1 << 22, device),
        ablation::ablation_phase1_only(device),
    ];
    for (i, fig) in figs.iter().enumerate() {
        print!("{}", render::figure_text(fig));
        if let Some(dir) = csv_dir {
            let path = dir.join(format!("ablation{}.csv", i + 1));
            let _ = std::fs::write(&path, render::figure_csv(fig));
        }
        println!();
    }
    println!("Device sensitivity (Figure 1 series on a second GPU model):");
    for (name, fig) in ablation::device_sensitivity() {
        println!("--- {name} ---");
        print!("{}", render::figure_text(&fig));
        println!();
    }
}
