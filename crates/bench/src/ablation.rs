//! Ablation studies over PLR's design choices.
//!
//! DESIGN.md calls out the tunables the paper fixes heuristically; each
//! sweep here isolates one of them on the machine model:
//!
//! * **values per thread `x`** — the paper's heuristic picks the smallest
//!   `x` covering the input, capped at 9/11, and notes "most of the
//!   recurrences we tested yield higher performance for other values of m
//!   and/or x" (future work: auto-tuning like SAM's);
//! * **shared-memory factor budget** — PLR buffers the first 1024 factor
//!   entries; the paper suggests "buffering more than 1024 elements …
//!   might boost PLR's performance" on higher-order prefix sums;
//! * **look-back visibility delay** — how far behind the global carries
//!   lag, exercising the variable look-back fix-up chain;
//! * **pipeline depth `c`** — the carry ring size (the paper uses 32 so a
//!   single warp handles the carries).

use crate::figures::Figure;
use crate::figures::Series;
use plr_codegen::exec::{self, ExecOptions};
use plr_codegen::lower::{lower, LowerOptions};
use plr_core::element::Element;
use plr_core::signature::Signature;
use plr_sim::{CostModel, DeviceConfig};

/// Sweep of `x` (values per thread) for one signature and input size.
pub fn ablation_x<T: Element>(sig: &Signature<T>, n: usize, device: &DeviceConfig) -> Figure {
    let model = CostModel::new(device.clone());
    let mut points = Vec::new();
    let mut sizes = Vec::new();
    for x in 1..=11usize {
        let opts = LowerOptions {
            x_override: Some(x),
            ..Default::default()
        };
        let plan = lower(sig, n, device, &opts);
        if plan.x != x {
            continue; // capped for this element type
        }
        let run = exec::estimate(&plan, n, device, &ExecOptions::default());
        sizes.push(x);
        points.push((x, run.throughput(&model) / 1e9));
    }
    Figure {
        title: format!("Ablation: values per thread x, {sig}, n = {n}"),
        xlabels: Some(sizes.iter().map(|x| format!("x={x}")).collect()),
        sizes,
        series: vec![Series {
            name: "PLR".to_owned(),
            points,
        }],
    }
}

/// Sweep of the shared-memory factor budget for one signature.
pub fn ablation_shared_budget<T: Element>(
    sig: &Signature<T>,
    n: usize,
    device: &DeviceConfig,
) -> Figure {
    let model = CostModel::new(device.clone());
    let budgets = [0usize, 256, 1024, 4096, 16384];
    let mut points = Vec::new();
    for &budget in &budgets {
        let opts = LowerOptions {
            shared_factor_budget: budget,
            ..Default::default()
        };
        let plan = lower(sig, n, device, &opts);
        let run = exec::estimate(&plan, n, device, &ExecOptions::default());
        points.push((budget, run.throughput(&model) / 1e9));
    }
    Figure {
        title: format!("Ablation: shared-memory factor budget, {sig}, n = {n}"),
        sizes: budgets.to_vec(),
        xlabels: Some(budgets.iter().map(|b| format!("{b}")).collect()),
        series: vec![Series {
            name: "PLR".to_owned(),
            points,
        }],
    }
}

/// Sweep of the look-back visibility delay (functional execution, so the
/// fix-up chain really runs and its extra work is counted).
pub fn ablation_lookback<T: Element>(
    sig: &Signature<T>,
    n: usize,
    device: &DeviceConfig,
) -> Figure {
    let model = CostModel::new(device.clone());
    let input: Vec<T> = (0..n)
        .map(|i| T::from_i32(((i * 29) % 17) as i32 - 8))
        .collect();
    let plan = lower(sig, n, device, &LowerOptions::default());
    let delays = [1usize, 2, 4, 8, 16, 32];
    let mut tput = Vec::new();
    let mut hops = Vec::new();
    for &d in &delays {
        let run = exec::execute(&plan, &input, device, &ExecOptions { lookback_delay: d });
        tput.push((d, run.throughput(&model) / 1e9));
        hops.push((
            d,
            run.counters.lookback_hops as f64 / run.workload.blocks.max(1) as f64,
        ));
    }
    Figure {
        title: format!("Ablation: look-back visibility delay, {sig}, n = {n}"),
        sizes: delays.to_vec(),
        xlabels: Some(delays.iter().map(|d| format!("d={d}")).collect()),
        series: vec![
            Series {
                name: "throughput".to_owned(),
                points: tput,
            },
            Series {
                name: "hops/chunk".to_owned(),
                points: hops,
            },
        ],
    }
}

/// Sweep of the pipeline depth `c` (the carry ring size).
pub fn ablation_pipeline_depth<T: Element>(
    sig: &Signature<T>,
    n: usize,
    device: &DeviceConfig,
) -> Figure {
    let model = CostModel::new(device.clone());
    let depths = [1usize, 2, 4, 8, 16, 32, 64];
    let mut points = Vec::new();
    for &c in &depths {
        let opts = LowerOptions {
            pipeline_depth: c,
            ..Default::default()
        };
        let plan = lower(sig, n, device, &opts);
        let run = exec::estimate(&plan, n, device, &ExecOptions::default());
        points.push((c, run.throughput(&model) / 1e9));
    }
    Figure {
        title: format!("Ablation: pipeline depth c, {sig}, n = {n}"),
        sizes: depths.to_vec(),
        xlabels: Some(depths.iter().map(|c| format!("c={c}")).collect()),
        series: vec![Series {
            name: "PLR".to_owned(),
            points,
        }],
    }
}

/// The reason Phase 2 exists (paper Section 2.1: "as neither approach is
/// work efficient, we switch to Phase 2 beyond a constant chunk size m"):
/// compares the *counted arithmetic* of doubling all the way to `n`
/// against the two-phase split, per input size.
///
/// Returns a figure with two series of operations-per-element.
pub fn ablation_phase1_only(device: &DeviceConfig) -> Figure {
    use plr_core::nacci::CorrectionTable;
    use plr_sim::fabric::{self, FactorAccess, FactorListSpec};
    use plr_sim::GlobalMemory;

    let fb = [2i64, -1];
    let m = 1024usize;
    let sizes: Vec<usize> = (12..=18).map(|p| 1usize << p).collect();
    let mut only = Series {
        name: "phase 1 to n (ops/elem)".to_owned(),
        points: Vec::new(),
    };
    let mut two = Series {
        name: "two-phase (ops/elem)".to_owned(),
        points: Vec::new(),
    };

    let access = |len: usize| FactorAccess {
        lists: vec![
            FactorListSpec {
                inline: true,
                shared_limit: 0,
                active_len: len
            };
            2
        ],
        buffer: None,
        element_bytes: 4,
        table_len: len,
    };

    for &n in &sizes {
        let input: Vec<i64> = (0..n).map(|i| (i % 9) as i64 - 4).collect();

        // (a) Phase 1 doubling all the way to n: O(n·k·log n) work.
        let table = CorrectionTable::generate(&fb, n);
        let acc = access(n);
        let mut mem = GlobalMemory::new(device.clone());
        let mut data = input.clone();
        let mut chunk = 1usize;
        while chunk < n {
            fabric::merge_step(
                &table,
                &mut data,
                chunk,
                fabric::Exchange::Shuffle,
                &acc,
                &mut mem,
            );
            chunk *= 2;
        }
        only.points
            .push((n, mem.counters().flops as f64 / n as f64));

        // (b) Two-phase: doubling to m, then one correction pass.
        let table = CorrectionTable::generate(&fb, m);
        let acc = access(m);
        let mut mem = GlobalMemory::new(device.clone());
        let mut data = input.clone();
        for c in data.chunks_mut(m) {
            let mut chunk = 1usize;
            while chunk < c.len() {
                fabric::merge_step(&table, c, chunk, fabric::Exchange::Shuffle, &acc, &mut mem);
                chunk *= 2;
            }
        }
        // Phase 2 correction: k ops per element beyond the first chunk.
        let mut d2 = data;
        plr_core::phase2::propagate_sequential(&table, &mut d2, m);
        mem.counters_mut().flops += (fb.len() * (n - m.min(n))) as u64;
        two.points.push((n, mem.counters().flops as f64 / n as f64));
    }

    Figure {
        title: "Ablation: Phase-1-only vs two-phase work (order 2)".to_owned(),
        xlabels: Some(
            sizes
                .iter()
                .map(|n| format!("2^{}", n.trailing_zeros()))
                .collect(),
        ),
        sizes,
        series: vec![only, two],
    }
}

/// Device sensitivity: the headline figure-1 series on a second GPU model.
pub fn device_sensitivity() -> Vec<(String, Figure)> {
    [DeviceConfig::titan_x(), DeviceConfig::gtx_1080()]
        .into_iter()
        .map(|device| {
            let fig = crate::figures::figure(1, &device);
            (device.name.to_owned(), fig)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::value_at;
    use plr_core::prefix;

    fn device() -> DeviceConfig {
        DeviceConfig::titan_x()
    }

    #[test]
    fn x_sweep_produces_points_for_every_uncapped_x() {
        let sig = prefix::prefix_sum::<i32>();
        let fig = ablation_x(&sig, 1 << 24, &device());
        assert_eq!(fig.series[0].points.len(), 11);
        // Throughput varies with x: the heuristic is not always optimal,
        // exactly as the paper admits.
        let values: Vec<f64> = fig.series[0].points.iter().map(|p| p.1).collect();
        let best = values.iter().cloned().fold(0.0, f64::max);
        let worst = values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(best > worst, "x should matter");
    }

    #[test]
    fn shared_budget_matters_for_dense_factor_lists() {
        let sig = prefix::higher_order_prefix_sum::<i32>(2);
        let fig = ablation_shared_budget(&sig, 1 << 24, &device());
        let at = |b: usize| value_at(&fig.series[0], b).unwrap();
        // No buffering is worst; bigger budgets help (the paper's
        // future-work conjecture holds on the model).
        assert!(at(0) <= at(1024));
        assert!(at(1024) <= at(16384));
        assert!(at(16384) > at(0), "budget should matter for dense lists");
    }

    #[test]
    fn lookback_delay_increases_hops_but_output_stays_correct() {
        let sig = prefix::higher_order_prefix_sum::<i64>(2);
        let fig = ablation_lookback(&sig, 200_000, &device());
        let hops = &fig.series[1];
        let first = hops.points.first().unwrap().1;
        let last = hops.points.last().unwrap().1;
        assert!(last > first, "deeper delays must walk further back");
    }

    #[test]
    fn pipeline_depth_one_serializes_the_carry_chain() {
        // With depth 1 the exposed fill is tiny but... the ring still
        // works; mainly this pins that the sweep runs end to end.
        let sig = prefix::prefix_sum::<i32>();
        let fig = ablation_pipeline_depth(&sig, 1 << 22, &device());
        assert_eq!(fig.series[0].points.len(), 7);
    }

    #[test]
    fn phase1_only_work_grows_with_log_n_but_two_phase_is_flat() {
        // Paper Section 2.1: Phase 1 alone is O(nk log n); the two-phase
        // split restores O(nk).
        let fig = ablation_phase1_only(&device());
        let only = &fig.series[0];
        let two = &fig.series[1];
        // Phase-1-only ops/elem grow by ~k/2 per doubling of n…
        let growth = only.points.last().unwrap().1 - only.points.first().unwrap().1;
        assert!(
            growth > 4.0,
            "expected log growth, got {growth:.2} ops/elem over 6 doublings"
        );
        // …while the two-phase cost per element stays flat.
        let flat = two.points.last().unwrap().1 - two.points.first().unwrap().1;
        assert!(
            flat.abs() < 0.5,
            "two-phase should be work efficient, drifted {flat:.2}"
        );
        // And the two-phase cost is strictly lower at every tested size.
        for (a, b) in only.points.iter().zip(&two.points) {
            assert!(b.1 < a.1, "two-phase must do less work at n = {}", a.0);
        }
    }

    #[test]
    fn conclusions_hold_on_a_second_device() {
        for (name, fig) in device_sensitivity() {
            let n = 1 << 28;
            let mc = value_at(&fig.series[0], n).unwrap();
            let plr = value_at(fig.series.iter().find(|s| s.name == "PLR").unwrap(), n).unwrap();
            assert!(plr > 0.9 * mc, "{name}: PLR {plr:.1} vs memcpy {mc:.1}");
        }
    }
}
