//! Deterministic workload generators.
//!
//! The paper notes the tested codes' behaviour is value-independent, so
//! *which* values a workload holds only matters for validation. These
//! generators are deterministic (seeded splitmix-style mixing, no RNG
//! dependency in the library) and shared by the harness, benches, and
//! examples so that every run is reproducible bit for bit.

use plr_core::element::Element;

/// A named, deterministic input generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// All zeros (degenerate control).
    Zeros,
    /// All ones (the classic prefix-sum smoke input).
    Ones,
    /// A small-range sawtooth `(i mod 23) - 11`.
    Sawtooth,
    /// SplitMix64-mixed pseudo-random values folded into a small range
    /// (keeps integer recurrences far from overflow at every order).
    Mixed,
    /// Mixed values over the full 32-bit range (exercises wrapping).
    FullRange,
    /// Sparse bursts on a zero background (envelope-style signals).
    Bursts,
}

impl Workload {
    /// Every generator, for sweeps.
    pub const ALL: [Workload; 6] = [
        Workload::Zeros,
        Workload::Ones,
        Workload::Sawtooth,
        Workload::Mixed,
        Workload::FullRange,
        Workload::Bursts,
    ];

    /// Generates `n` elements.
    pub fn generate<T: Element>(self, n: usize) -> Vec<T> {
        (0..n).map(|i| self.value(i)).collect()
    }

    /// The `i`-th element of the workload.
    pub fn value<T: Element>(self, i: usize) -> T {
        match self {
            Workload::Zeros => T::zero(),
            Workload::Ones => T::one(),
            Workload::Sawtooth => T::from_i32((i % 23) as i32 - 11),
            Workload::Mixed => T::from_i32((splitmix(i as u64) % 41) as i32 - 20),
            Workload::FullRange => T::from_i32(splitmix(i as u64) as i32),
            Workload::Bursts => {
                if splitmix(i as u64).is_multiple_of(97) {
                    T::from_i32((splitmix(i as u64 ^ 0xbeef) % 12) as i32 + 1)
                } else {
                    T::zero()
                }
            }
        }
    }
}

/// SplitMix64 finalizer: a tiny, well-distributed deterministic mixer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        for w in Workload::ALL {
            assert_eq!(w.generate::<i64>(100), w.generate::<i64>(100), "{w:?}");
        }
    }

    #[test]
    fn shapes_are_as_advertised() {
        assert!(Workload::Zeros.generate::<i32>(10).iter().all(|&v| v == 0));
        assert!(Workload::Ones.generate::<i32>(10).iter().all(|&v| v == 1));
        let saw = Workload::Sawtooth.generate::<i32>(100);
        assert!(saw.iter().all(|&v| (-11..12).contains(&v)));
        let mixed = Workload::Mixed.generate::<i32>(1000);
        assert!(mixed.iter().all(|&v| (-20..21).contains(&v)));
        let bursts = Workload::Bursts.generate::<i32>(10_000);
        let nonzero = bursts.iter().filter(|&&v| v != 0).count();
        assert!(nonzero > 0 && nonzero < 1000, "sparse: {nonzero} nonzero");
    }

    #[test]
    fn full_range_actually_wraps() {
        let v = Workload::FullRange.generate::<i32>(10_000);
        assert!(v.iter().any(|&x| x > i32::MAX / 2));
        assert!(v.iter().any(|&x| x < i32::MIN / 2));
    }

    #[test]
    fn splitmix_distributes() {
        // Adjacent inputs land far apart.
        let a = splitmix(1);
        let b = splitmix(2);
        assert_ne!(a, b);
        assert!(((a ^ b).count_ones() as i32 - 32).abs() < 24);
    }

    #[test]
    fn float_generation_works() {
        let v = Workload::Sawtooth.generate::<f32>(5);
        assert_eq!(v[0], -11.0);
    }
}
