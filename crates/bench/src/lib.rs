//! # plr-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation section on the machine model:
//!
//! * [`figures::figure`] — Figures 1–10 (throughput sweeps and the
//!   optimization on/off comparison);
//! * [`tables::table1`] / [`tables::table2`] / [`tables::table3`] — the
//!   signature catalog, GPU memory usage, and L2 read misses;
//! * [`render`] — plain-text and CSV output;
//! * [`plr_exec::PlrExecutor`] — PLR behind the common executor interface.
//!
//! The `reproduce` binary drives all of it:
//!
//! ```text
//! cargo run -p plr-bench --bin reproduce -- all
//! cargo run -p plr-bench --bin reproduce -- fig4 table3 --csv results/
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod claims;
pub mod figures;
pub mod plr_exec;
pub mod render;
pub mod tables;
pub mod workloads;

pub use plr_exec::PlrExecutor;
