//! The PLR compiler front door.
//!
//! Mirrors the paper's workflow: a signature (text or typed) goes in, CUDA
//! source and an executable kernel plan come out. Code generation is fast —
//! the paper reports ~10 ms because the correction factors are produced by
//! the n-nacci recurrence rather than equation solving — and that property
//! carries over here (covered by a test).

use crate::emit;
use crate::exec::{self, ExecOptions, Execution};
use crate::lower::{lower, LowerOptions};
use crate::plan::KernelPlan;
use plr_core::element::Element;
use plr_core::error::SignatureError;
use plr_core::signature::Signature;
use plr_sim::DeviceConfig;

/// The result of compiling a signature.
#[derive(Debug, Clone)]
pub struct Compilation<T> {
    /// The lowered kernel plan (heuristics applied, factors precomputed).
    pub plan: KernelPlan<T>,
    /// The emitted CUDA translation unit.
    pub cuda: String,
}

impl<T: Element> Compilation<T> {
    /// Executes the compiled kernel on the machine model.
    pub fn execute(&self, input: &[T], device: &DeviceConfig) -> Execution<T> {
        exec::execute(&self.plan, input, device, &ExecOptions::default())
    }

    /// Renders the CPU (C/OpenMP) backend for the same plan.
    pub fn c_source(&self) -> String {
        crate::emit_c::c_source(&self.plan)
    }

    /// The optimization report for the plan.
    pub fn report(&self) -> crate::report::OptimizationReport {
        crate::report::report(&self.plan)
    }
}

/// The compiler: device description + lowering options.
///
/// # Examples
///
/// ```
/// use plr_codegen::compiler::Plr;
///
/// let c = Plr::new().compile_str::<i64>("(1: 3, -3, 1)", 1 << 24)?;
/// assert_eq!(c.plan.order(), 3);
/// assert!(c.cuda.contains("plr_kernel"));
/// # Ok::<(), plr_core::error::SignatureError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Plr {
    device: DeviceConfig,
    options: LowerOptions,
}

impl Plr {
    /// A compiler targeting the paper's Titan X with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the target device.
    pub fn with_device(mut self, device: DeviceConfig) -> Self {
        self.device = device;
        self
    }

    /// Overrides the lowering options (optimization toggles, pipeline
    /// depth, shared-memory factor budget).
    pub fn with_options(mut self, options: LowerOptions) -> Self {
        self.options = options;
        self
    }

    /// The target device.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Compiles a typed signature for inputs of length `n`.
    pub fn compile<T: Element>(&self, signature: &Signature<T>, n: usize) -> Compilation<T> {
        let plan = lower(signature, n, &self.device, &self.options);
        let cuda = emit::cuda_source(&plan);
        Compilation { plan, cuda }
    }

    /// Parses and compiles a textual signature for inputs of length `n`.
    ///
    /// # Errors
    ///
    /// Returns the [`SignatureError`] from parsing.
    pub fn compile_str<T: Element>(
        &self,
        signature: &str,
        n: usize,
    ) -> Result<Compilation<T>, SignatureError> {
        let sig: Signature<T> = signature.parse()?;
        Ok(self.compile(&sig, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::{serial, validate::validate};
    use std::time::Instant;

    #[test]
    fn compile_and_execute_round_trip() {
        let plr = Plr::new();
        let c = plr.compile_str::<i64>("1: 2, -1", 20_000).unwrap();
        let input: Vec<i64> = (0..20_000).map(|i| (i % 17) as i64 - 8).collect();
        let run = c.execute(&input, plr.device());
        let expect = serial::run(&c.plan.signature, &input);
        validate(&expect, &run.output, 0.0).unwrap();
    }

    #[test]
    fn compilation_is_fast_like_the_paper() {
        // Paper: "the entire code generation … takes only roughly 10 ms".
        let plr = Plr::new();
        let start = Instant::now();
        let c = plr
            .compile_str::<f32>("0.008: 2.4, -1.92, 0.512", 1 << 30)
            .unwrap();
        let elapsed = start.elapsed();
        assert!(!c.cuda.is_empty());
        assert!(elapsed.as_millis() < 250, "codegen took {elapsed:?}");
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(Plr::new()
            .compile_str::<i32>("not a signature", 100)
            .is_err());
    }
}
