//! Kernel-plan executor on the machine model.
//!
//! Interprets a [`KernelPlan`] over a real input exactly as the emitted
//! CUDA kernel would run: blocks claim chunks through an atomic counter,
//! read their chunk, apply the map stage, run hierarchical Phase 1 (warp
//! shuffles, then shared memory), publish local carries behind a fence and
//! flag, perform the variable look-back to obtain the predecessor's global
//! carries, correct the chunk, publish global carries, and write the
//! result. Every modelled hardware event is accounted in the
//! [`GlobalMemory`]'s counters; the output is bit-validated against the
//! serial reference in tests.

use crate::plan::KernelPlan;
use plr_core::analysis::FactorPattern;
use plr_core::element::Element;
use plr_core::nacci::carries_of;
use plr_sim::fabric::{self, FactorAccess, FactorListSpec};
use plr_sim::memory::GlobalMemory;
use plr_sim::timing::Workload;
use plr_sim::{Counters, DeviceConfig, RunReport};

/// Execution-time knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Look-back visibility delay `d`: the global carries of chunk `j`
    /// become visible to chunks `>= j + d`. With `d = 1` every chunk finds
    /// its immediate predecessor's global carries (minimum-depth
    /// look-back); larger `d` models a deeper pipeline and exercises the
    /// variable look-back fix-up chain.
    pub lookback_delay: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { lookback_delay: 1 }
    }
}

/// Result of executing (or estimating) a plan: see [`RunReport`].
pub type Execution<T> = RunReport<T>;

/// Builds the factor-access spec a plan implies.
fn factor_access<T: Element>(plan: &KernelPlan<T>, mem: &mut GlobalMemory) -> FactorAccess {
    let m = plan.chunk_size();
    let k = plan.order();
    let elem = T::BYTES as u64;
    let mut lists = Vec::with_capacity(k);
    for r in 0..k {
        let active_len = match plan.analysis.patterns[r] {
            FactorPattern::AllZero => 0,
            FactorPattern::DecaysAfter { decay_len } if plan.opts.decay_truncation => decay_len,
            _ => m,
        };
        let spec = if plan.list_is_inline(r) {
            if plan.opts.factor_specialization
                && matches!(
                    plan.analysis.patterns[r],
                    FactorPattern::AllZero | FactorPattern::Constant(_) | FactorPattern::ZeroOne(_)
                )
            {
                // Truly free: folded into the instruction stream.
                FactorListSpec {
                    inline: true,
                    shared_limit: 0,
                    active_len,
                }
            } else {
                // Suppressed shifted duplicate: loads are served through
                // list 0's storage, so it costs like a buffered list.
                FactorListSpec {
                    inline: false,
                    shared_limit: plan.shared_factor_budget.min(m),
                    active_len,
                }
            }
        } else {
            FactorListSpec {
                inline: false,
                shared_limit: plan.shared_factor_budget.min(m),
                active_len,
            }
        };
        lists.push(spec);
    }
    let any_global = lists
        .iter()
        .any(|s| !s.inline && s.active_len > s.shared_limit);
    let buffer = if plan.materialized_lists() > 0 || any_global {
        Some(mem.alloc((k * m) as u64 * elem, "correction factors"))
    } else {
        None
    };
    FactorAccess {
        lists,
        buffer,
        element_bytes: elem,
        table_len: m,
    }
}

/// Executes `plan` over `input` on the machine model.
///
/// Returns the output values, event counters, workload description, and the
/// peak device allocation.
///
/// # Panics
///
/// Panics if `input` is empty (lowering already requires `n > 0`) or if
/// `opts.lookback_delay == 0`.
pub fn execute<T: Element>(
    plan: &KernelPlan<T>,
    input: &[T],
    device: &DeviceConfig,
    opts: &ExecOptions,
) -> Execution<T> {
    assert!(!input.is_empty());
    assert!(opts.lookback_delay >= 1);
    let n = input.len();
    let m = plan.chunk_size();
    let k = plan.order();
    let elem = T::BYTES as u64;
    let feedback = plan.signature.feedback().to_vec();
    let fir = &plan.fir;
    let p = fir.len() - 1;
    let blocks = plan.blocks_for(n);

    let mut mem = GlobalMemory::new(device.clone());
    let in_buf = mem.alloc(n as u64 * elem, "input");
    let out_buf = mem.alloc(n as u64 * elem, "output");
    let access = factor_access(plan, &mut mem);
    // Ring buffers for the pipelined carries: 2 flags and 2k carries per
    // pipeline slot (paper Section 2.2), plus the chunk counter.
    let depth = plan.pipeline_depth as u64;
    let carry_buf = mem.alloc(2 * depth * k as u64 * elem, "carries");
    let flag_buf = mem.alloc(2 * depth * 4, "flags");
    let counter_buf = mem.alloc(4, "chunk counter");

    let mut output = vec![T::zero(); n];
    let mut local_carries: Vec<Vec<T>> = Vec::with_capacity(blocks);
    let mut global_carries: Vec<Vec<T>> = Vec::with_capacity(blocks);

    for c in 0..blocks {
        let start = c * m;
        let end = (start + m).min(n);
        let len = end - start;
        let slot = (c as u64 % depth) * k as u64 * elem;

        // Section 2: claim a chunk, read its input values.
        mem.atomic(counter_buf, 0, 4);
        mem.read(in_buf, start as u64 * elem, len as u64 * elem);

        // Section 3: the map operation (FIR), reading up to p values of
        // overlap from the preceding chunk.
        let mut chunk: Vec<T> = Vec::with_capacity(len);
        if p > 0 && start > 0 {
            let overlap = p.min(start);
            mem.read(
                in_buf,
                (start - overlap) as u64 * elem,
                overlap as u64 * elem,
            );
        }
        for i in start..end {
            let mut acc = T::zero();
            for (j, &a) in fir.iter().enumerate() {
                if j > i {
                    break;
                }
                acc = acc.add(a.mul(input[i - j]));
                mem.counters_mut().flops += 1;
            }
            chunk.push(acc);
        }

        // Section 4: hierarchical Phase 1 (thread solves, shuffles, shared).
        fabric::block_local_solve(
            &feedback,
            &plan.table,
            &mut chunk,
            plan.x,
            device.warp_size,
            &access,
            &mut mem,
        );

        // Section 5: publish local carries behind a fence + flag.
        let locals = carries_of(&chunk, k);
        mem.write(carry_buf, slot, locals.len() as u64 * elem);
        mem.fence();
        mem.atomic(flag_buf, (c as u64 % depth) * 4, 4);
        local_carries.push(locals);

        // Section 6: variable look-back for the predecessor's global
        // carries, then fix up through the intervening local carries.
        if c > 0 {
            let visible = c.saturating_sub(opts.lookback_delay); // most recent visible globals
            let hops = c - visible; // carry sets read: globals[visible] + locals
            mem.counters_mut().lookback_hops += hops as u64;
            mem.counters_mut().spin_waits += (opts.lookback_delay - 1) as u64;
            // Read the visible global carries…
            mem.read(
                carry_buf,
                depth * k as u64 * elem + (visible as u64 % depth) * k as u64 * elem,
                k as u64 * elem,
            );
            let mut g = global_carries[visible].clone();
            // …and the local carries of every following chunk.
            for (j, locals) in local_carries.iter().enumerate().take(c).skip(visible + 1) {
                mem.read(
                    carry_buf,
                    (j as u64 % depth) * k as u64 * elem,
                    k as u64 * elem,
                );
                let chunk_len = m.min(n - j * m);
                g = plan.table.fixup_carries(&g, locals, chunk_len);
                mem.counters_mut().flops += (k * k) as u64;
            }
            if !T::IS_FLOAT {
                // Float chains reassociate, so exact equality only holds
                // for the integer types.
                debug_assert_eq!(
                    g,
                    global_carries[c - 1],
                    "look-back must reconstruct the chain"
                );
            }

            // Correct the chunk with the predecessor's global carries.
            fabric::correct_with_carries(&plan.table, &mut chunk, &g, &access, &mut mem);
        }

        // Publish global carries.
        let globals = carries_of(&chunk, k);
        mem.write(
            carry_buf,
            depth * k as u64 * elem + slot,
            globals.len() as u64 * elem,
        );
        mem.fence();
        mem.atomic(flag_buf, depth * 4 + (c as u64 % depth) * 4, 4);
        global_carries.push(globals);

        // Section 7: write the result values.
        mem.write(out_buf, start as u64 * elem, len as u64 * elem);
        output[start..end].copy_from_slice(&chunk);
    }

    let workload = Workload {
        elements: n as u64,
        blocks: blocks as u64,
        threads_per_block: plan.threads_per_block,
        registers_per_thread: plan.registers_per_thread,
        exposed_hops: (blocks.saturating_sub(1)).min(plan.pipeline_depth) as u64,
        launches: 1,
        compute_efficiency: plan.compute_efficiency(),
        bandwidth_efficiency: plan.bandwidth_efficiency(),
    };
    Execution {
        output,
        counters: *mem.counters(),
        workload,
        peak_bytes: mem.peak_bytes(),
    }
}

/// Cost-only estimate for an `n`-element input, without materializing data.
///
/// Counts one leading chunk, one interior chunk, and the ragged tail
/// exactly (by running the counting loops over dummy data), and scales the
/// interior chunk by the number of interior chunks. Global traffic,
/// arithmetic, and exchange counts match [`execute`] exactly; the L2 miss
/// figure is approximated as the cold input traffic plus the factor
/// arrays' footprint (valid for streaming inputs much larger than the L2).
pub fn estimate<T: Element>(
    plan: &KernelPlan<T>,
    n: usize,
    device: &DeviceConfig,
    opts: &ExecOptions,
) -> Execution<T> {
    assert_eq!(
        opts.lookback_delay, 1,
        "estimates scale interior chunks, which is only exact at look-back delay 1"
    );
    let m = plan.chunk_size();
    let blocks = plan.blocks_for(n);
    if blocks <= 3 {
        // Small enough to just run on dummy data.
        let input = vec![T::one(); n];
        let mut e = execute(plan, &input, device, opts);
        e.output = Vec::new();
        return e;
    }
    // Counters for chunks 0, 1 (interior), and the tail, via a 3-chunk run
    // and differencing.
    let probe = |len: usize| -> (Counters, u64) {
        let input = vec![T::one(); len];
        let e = execute(plan, &input, device, opts);
        (e.counters, e.peak_bytes)
    };
    let (c1, _) = probe(m);
    let (c2, _) = probe(2 * m);
    let tail = n - (blocks - 1) * m;
    let (ct, _) = probe(2 * m + tail);

    // interior = c2 - c1; tail_extra = ct - c2 (the tail chunk after two
    // full chunks; look-back state is equivalent for delay-1 chains, and
    // for deeper delays interior chunks saturate at the same depth).
    let mut counters = c1;
    let interior = diff(&c2, &c1);
    let tail_extra = diff(&ct, &c2);
    // Total = chunk0 + (blocks-2) interior chunks + the tail chunk: at
    // delay-1 look-back every interior chunk costs the same, which the
    // consistency test asserts against a full execution.
    for _ in 0..blocks - 2 {
        counters.merge(&interior);
    }
    counters.merge(&tail_extra);

    // Approximate L2 read misses: cold input stream + factor footprint.
    let elem = T::BYTES as u64;
    counters.l2_read_miss_bytes = n as u64 * elem
        + (plan.materialized_lists().max(1) as u64 * m as u64 * elem)
            .min(counters.global_read_bytes.saturating_sub(n as u64 * elem));

    let workload = Workload {
        elements: n as u64,
        blocks: blocks as u64,
        threads_per_block: plan.threads_per_block,
        registers_per_thread: plan.registers_per_thread,
        exposed_hops: (blocks - 1).min(plan.pipeline_depth) as u64,
        launches: 1,
        compute_efficiency: plan.compute_efficiency(),
        bandwidth_efficiency: plan.bandwidth_efficiency(),
    };
    let peak = {
        // Allocation ledger is analytic: buffers scale with n.
        let mut mem = GlobalMemory::new(device.clone());
        let k = plan.order() as u64;
        mem.alloc(n as u64 * elem, "input");
        mem.alloc(n as u64 * elem, "output");
        mem.alloc(k * m as u64 * elem, "correction factors");
        mem.alloc(2 * plan.pipeline_depth as u64 * k * elem, "carries");
        mem.alloc(2 * plan.pipeline_depth as u64 * 4, "flags");
        mem.alloc(4, "chunk counter");
        mem.peak_bytes()
    };
    Execution {
        output: Vec::new(),
        counters,
        workload,
        peak_bytes: peak,
    }
}

fn diff(a: &Counters, b: &Counters) -> Counters {
    Counters {
        global_read_bytes: a.global_read_bytes - b.global_read_bytes,
        global_write_bytes: a.global_write_bytes - b.global_write_bytes,
        l2_read_miss_bytes: a.l2_read_miss_bytes.saturating_sub(b.l2_read_miss_bytes),
        shared_accesses: a.shared_accesses - b.shared_accesses,
        shuffles: a.shuffles - b.shuffles,
        flops: a.flops - b.flops,
        atomics: a.atomics - b.atomics,
        fences: a.fences - b.fences,
        lookback_hops: a.lookback_hops - b.lookback_hops,
        spin_waits: a.spin_waits - b.spin_waits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, LowerOptions};
    use crate::plan::Optimizations;
    use plr_core::serial;
    use plr_core::signature::Signature;
    use plr_core::validate::validate;

    fn run_check<T: Element>(sig_text: &str, n: usize, tol: f64, opts: ExecOptions)
    where
        Signature<T>: std::str::FromStr,
        <Signature<T> as std::str::FromStr>::Err: std::fmt::Debug,
    {
        let sig: Signature<T> = sig_text.parse().unwrap();
        let device = DeviceConfig::titan_x();
        let plan = lower(&sig, n, &device, &LowerOptions::default());
        let input: Vec<T> = (0..n)
            .map(|i| T::from_i32(((i * 37) % 23) as i32 - 11))
            .collect();
        let exec = execute(&plan, &input, &device, &opts);
        let expect = serial::run(&sig, &input);
        validate(&expect, &exec.output, tol).unwrap_or_else(|e| panic!("{sig_text}: {e}"));
    }

    #[test]
    fn executes_integer_catalog_correctly() {
        for text in ["1:1", "1:0,1", "1:0,0,1", "1:2,-1", "1:3,-3,1"] {
            run_check::<i64>(text, 10_000, 0.0, ExecOptions::default());
        }
    }

    #[test]
    fn executes_float_catalog_correctly() {
        for text in [
            "0.2:0.8",
            "0.04:1.6,-0.64",
            "0.008:2.4,-1.92,0.512",
            "0.9,-0.9:0.8",
            "0.81,-1.62,0.81:1.6,-0.64",
        ] {
            run_check::<f32>(text, 10_000, 1e-3, ExecOptions::default());
        }
        // The 3-stage high-pass (triple pole at 0.8) is the worst
        // conditioned of the catalog: hierarchical reassociation in f32
        // reaches ~1.4e-3 relative error while the identical f64 run is
        // within 3e-12 of serial — pure single-precision roundoff, so this
        // case gets a correspondingly looser bound.
        run_check::<f32>(
            "0.729,-2.187,2.187,-0.729:2.4,-1.92,0.512",
            10_000,
            5e-3,
            ExecOptions::default(),
        );
        run_check::<f64>(
            "0.729,-2.187,2.187,-0.729:2.4,-1.92,0.512",
            10_000,
            1e-9,
            ExecOptions::default(),
        );
    }

    #[test]
    fn deeper_lookback_still_correct() {
        for delay in [1usize, 2, 5, 32] {
            run_check::<i64>(
                "1:2,-1",
                30_000,
                0.0,
                ExecOptions {
                    lookback_delay: delay,
                },
            );
        }
    }

    #[test]
    fn optimizations_off_still_correct() {
        let sig: Signature<f32> = "0.04:1.6,-0.64".parse().unwrap();
        let device = DeviceConfig::titan_x();
        let o = LowerOptions {
            opts: Optimizations::none(),
            ..Default::default()
        };
        let plan = lower(&sig, 8000, &device, &o);
        let input: Vec<f32> = (0..8000).map(|i| ((i % 11) as f32) - 5.0).collect();
        let exec = execute(&plan, &input, &device, &ExecOptions::default());
        let expect = serial::run(&sig, &input);
        validate(&expect, &exec.output, 1e-3).unwrap();
    }

    #[test]
    fn optimizations_reduce_work() {
        let sig: Signature<f32> = "0.04:1.6,-0.64".parse().unwrap();
        let device = DeviceConfig::titan_x();
        let n = 50_000;
        let input: Vec<f32> = (0..n).map(|i| ((i % 11) as f32) - 5.0).collect();

        let on = execute(
            &lower(&sig, n, &device, &LowerOptions::default()),
            &input,
            &device,
            &ExecOptions::default(),
        );
        let off = execute(
            &lower(
                &sig,
                n,
                &device,
                &LowerOptions {
                    opts: Optimizations::none(),
                    ..Default::default()
                },
            ),
            &input,
            &device,
            &ExecOptions::default(),
        );
        // Decay truncation cuts arithmetic; shared buffering cuts global
        // factor traffic.
        assert!(on.counters.flops < off.counters.flops);
        assert!(on.counters.global_read_bytes < off.counters.global_read_bytes);
    }

    #[test]
    fn data_movement_is_2n_plus_small_change() {
        // Paper Section 2.2: every input read once, every output written
        // once, plus 2k carries and 2 flags per chunk.
        let sig: Signature<i32> = "1:1".parse().unwrap();
        let device = DeviceConfig::titan_x();
        let n = 100_000;
        let plan = lower(&sig, n, &device, &LowerOptions::default());
        let input = vec![1i32; n];
        let e = execute(&plan, &input, &device, &ExecOptions::default());
        let blocks = plan.blocks_for(n) as u64;
        let nb = n as u64 * 4;
        assert_eq!(e.counters.global_write_bytes, nb + blocks * 2 * 4); // output + 2k carries/chunk (k=1)
                                                                        // Reads: input once + look-back carry reads (k words per hop).
        assert_eq!(e.counters.global_read_bytes, nb + (blocks - 1) * 4);
        assert_eq!(e.counters.atomics, blocks * 3); // claim + 2 flags
    }

    #[test]
    fn estimate_matches_execute_traffic_exactly() {
        let device = DeviceConfig::titan_x();
        for text in ["1:1", "1:2,-1", "1:0,1"] {
            let sig: Signature<i64> = text.parse().unwrap();
            for blocks in [4usize, 7] {
                let plan = lower(&sig, 100_000, &device, &LowerOptions::default());
                let m = plan.chunk_size();
                let n = blocks * m - m / 3; // ragged tail
                let plan = lower(&sig, n, &device, &LowerOptions::default());
                let input: Vec<i64> = (0..n).map(|i| (i % 13) as i64 - 6).collect();
                let real = execute(&plan, &input, &device, &ExecOptions::default());
                let est = estimate(&plan, n, &device, &ExecOptions::default());
                assert_eq!(
                    est.counters.global_read_bytes, real.counters.global_read_bytes,
                    "{text}"
                );
                assert_eq!(
                    est.counters.global_write_bytes, real.counters.global_write_bytes,
                    "{text}"
                );
                assert_eq!(est.counters.flops, real.counters.flops, "{text}");
                assert_eq!(est.counters.shuffles, real.counters.shuffles, "{text}");
                assert_eq!(
                    est.counters.shared_accesses, real.counters.shared_accesses,
                    "{text}"
                );
                assert_eq!(est.counters.atomics, real.counters.atomics, "{text}");
                assert_eq!(est.workload.blocks, real.workload.blocks, "{text}");
            }
        }
    }

    #[test]
    fn second_device_executes_correctly_too() {
        // The interpreter must not bake in Titan X constants: a Pascal
        // config changes residency and the x heuristic but not results.
        let sig: Signature<i64> = "1:3,-3,1".parse().unwrap();
        let device = DeviceConfig::gtx_1080();
        let n = 40_000;
        let plan = lower(&sig, n, &device, &LowerOptions::default());
        let input: Vec<i64> = (0..n).map(|i| (i % 17) as i64 - 8).collect();
        let run = execute(&plan, &input, &device, &ExecOptions::default());
        assert_eq!(run.output, serial::run(&sig, &input));
        assert_eq!(plan.resident_blocks, 20, "one 64-reg block per Pascal SM");
    }

    #[test]
    fn peak_memory_is_2n_plus_megabytes() {
        // Table 2: PLR allocates the input/output arrays plus only 2–3 MB.
        let sig: Signature<i32> = "1:2,-1".parse().unwrap();
        let device = DeviceConfig::titan_x();
        let n = 1 << 26;
        let plan = lower(&sig, n, &device, &LowerOptions::default());
        let est = estimate(&plan, n, &device, &ExecOptions::default());
        let buffers = 2 * (n as u64) * 4;
        let context = device.context_overhead_bytes;
        let extra = est.peak_bytes - buffers - context;
        assert!(extra < 3 * 1024 * 1024, "extra {} bytes", extra);
    }
}
