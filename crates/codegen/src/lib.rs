//! # plr-codegen
//!
//! The PLR domain-specific compiler: translates a recurrence signature into
//! (a) CUDA source code, reproducing the paper's proof-of-concept compiler,
//! and (b) an executable kernel plan interpreted on the `plr-sim` machine
//! model, which is how this reproduction runs and measures the kernels.
//!
//! Pipeline: [`lower::lower`] applies the paper's chunk-size and register
//! heuristics and precomputes the correction-factor table, producing a
//! [`plan::KernelPlan`]; [`emit`] renders it as CUDA; [`exec`] interprets
//! it on the machine model with full event accounting.
//!
//! ```
//! use plr_codegen::compiler::Plr;
//!
//! let compilation = Plr::new().compile_str::<i32>("1 : 2, -1", 1 << 20)?;
//! assert!(compilation.cuda.contains("__global__"));
//! # Ok::<(), plr_core::error::SignatureError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compiler;
pub mod emit;
pub mod emit_c;
pub mod exec;
pub mod lint;
pub mod lower;
pub mod plan;
pub mod report;
pub mod tune;

pub use compiler::{Compilation, Plr};
pub use exec::{execute, ExecOptions, Execution};
pub use lower::{lower, LowerOptions};
pub use plan::{KernelPlan, Optimizations};
