//! Human-readable optimization reports for compiled plans.
//!
//! `plrc --emit report` prints one of these; it is the compiler explaining
//! which of the paper's Section 3.1 specializations fired and what the
//! chunk-size heuristics chose.

use crate::plan::KernelPlan;
use plr_core::analysis::FactorPattern;
use plr_core::element::Element;
use std::fmt;

/// A structured summary of the decisions in a [`KernelPlan`].
#[derive(Debug, Clone)]
pub struct OptimizationReport {
    /// The signature, rendered.
    pub signature: String,
    /// Recurrence order.
    pub order: usize,
    /// Values per thread.
    pub x: usize,
    /// Chunk size `m`.
    pub chunk_size: usize,
    /// Registers per thread.
    pub registers_per_thread: usize,
    /// Concurrently resident blocks `T`.
    pub resident_blocks: usize,
    /// One line per carry list describing its treatment.
    pub factor_lines: Vec<String>,
    /// Factor arrays actually materialized.
    pub materialized_lists: usize,
    /// Bytes of constant factor storage emitted.
    pub factor_bytes: usize,
    /// The plan's calibrated efficiency derates.
    pub compute_efficiency: f64,
    /// See [`KernelPlan::bandwidth_efficiency`].
    pub bandwidth_efficiency: f64,
}

/// Builds the report for a plan.
pub fn report<T: Element>(plan: &KernelPlan<T>) -> OptimizationReport {
    let m = plan.chunk_size();
    let mut factor_lines = Vec::new();
    let mut factor_bytes = 0usize;
    for r in 0..plan.order() {
        let spec = plan.opts.factor_specialization;
        let line = match &plan.analysis.patterns[r] {
            FactorPattern::AllZero if spec => {
                format!("carry {r}: all factors zero — correction elided")
            }
            FactorPattern::Constant(c) if spec => {
                format!("carry {r}: constant factor {c} — array suppressed")
            }
            FactorPattern::ZeroOne(_) if spec => {
                format!("carry {r}: 0/1 factors — conditional add, array suppressed")
            }
            FactorPattern::Periodic { period } if spec => {
                factor_bytes += period * T::BYTES;
                format!("carry {r}: periodic with period {period} — one period stored")
            }
            FactorPattern::DecaysAfter { decay_len } if plan.opts.decay_truncation => {
                if plan.list_is_inline(r) {
                    format!("carry {r}: shifted duplicate of carry 0 — array suppressed")
                } else {
                    factor_bytes += decay_len * T::BYTES;
                    format!(
                        "carry {r}: decays to zero after {decay_len} of {m} entries — truncated"
                    )
                }
            }
            _ if plan.list_is_inline(r) => {
                format!("carry {r}: shifted duplicate of carry 0 — array suppressed")
            }
            _ => {
                factor_bytes += m * T::BYTES;
                let buffered = plan.shared_factor_budget.min(m);
                format!(
                    "carry {r}: dense factors — full {m}-entry array, first {buffered} cached in shared memory"
                )
            }
        };
        factor_lines.push(line);
    }
    OptimizationReport {
        signature: plan.signature.to_string(),
        order: plan.order(),
        x: plan.x,
        chunk_size: m,
        registers_per_thread: plan.registers_per_thread,
        resident_blocks: plan.resident_blocks,
        factor_lines,
        materialized_lists: plan.materialized_lists(),
        factor_bytes,
        compute_efficiency: plan.compute_efficiency(),
        bandwidth_efficiency: plan.bandwidth_efficiency(),
    }
}

impl fmt::Display for OptimizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "signature          {}", self.signature)?;
        writeln!(f, "order k            {}", self.order)?;
        writeln!(
            f,
            "chunk size m       {} ({} threads x {} values)",
            self.chunk_size,
            self.chunk_size / self.x,
            self.x
        )?;
        writeln!(f, "registers/thread   {}", self.registers_per_thread)?;
        writeln!(f, "resident blocks T  {}", self.resident_blocks)?;
        writeln!(
            f,
            "factor storage     {} arrays, {} bytes",
            self.materialized_lists, self.factor_bytes
        )?;
        for line in &self.factor_lines {
            writeln!(f, "  {line}")?;
        }
        writeln!(
            f,
            "model derates      compute {:.2}, bandwidth {:.2}",
            self.compute_efficiency, self.bandwidth_efficiency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, LowerOptions};
    use plr_core::signature::Signature;
    use plr_sim::DeviceConfig;

    fn report_for<T: Element>(text: &str) -> OptimizationReport
    where
        Signature<T>: std::str::FromStr,
        <Signature<T> as std::str::FromStr>::Err: std::fmt::Debug,
    {
        let sig: Signature<T> = text.parse().unwrap();
        let plan = lower(
            &sig,
            1 << 24,
            &DeviceConfig::titan_x(),
            &LowerOptions::default(),
        );
        report(&plan)
    }

    #[test]
    fn prefix_sum_report_shows_constant_folding() {
        let r = report_for::<i32>("1:1");
        assert_eq!(r.materialized_lists, 0);
        assert_eq!(r.factor_bytes, 0);
        assert!(r.factor_lines[0].contains("constant factor 1"));
        assert!((r.bandwidth_efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn order2_report_shows_one_array_and_the_suppressed_dup() {
        let r = report_for::<i32>("1:2,-1");
        assert_eq!(r.materialized_lists, 1);
        assert_eq!(r.factor_bytes, r.chunk_size * 4);
        assert!(r.factor_lines[0].contains("dense factors"));
        assert!(r.factor_lines[1].contains("shifted duplicate"));
        assert!(r.compute_efficiency < 1.0);
    }

    #[test]
    fn filter_report_shows_decay() {
        let r = report_for::<f32>("0.2:0.8");
        assert!(r.factor_lines[0].contains("decays to zero"));
        assert!(r.factor_bytes < 1024 * 4);
    }

    #[test]
    fn display_is_complete_and_nonempty() {
        let r = report_for::<f32>("0.04:1.6,-0.64");
        let text = r.to_string();
        for needle in [
            "signature",
            "chunk size m",
            "resident blocks",
            "carry 0",
            "model derates",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
