//! `plrc` — the PLR command-line compiler.
//!
//! ```text
//! plrc "<signature>" [--n <len>] [--type int|long|float|double]
//!      [--emit cuda|c|report|run|stats] [--no-opt] [--tune]
//!      [--device titan-x|gtx-1080] [--lookback <d>]
//! ```
//!
//! * `--emit cuda` (default): print the generated CUDA source.
//! * `--emit c`: print the portable C/OpenMP backend output.
//! * `--emit report`: explain which optimizations fired and the heuristics.
//! * `--emit run`: execute on the machine model, validate against the
//!   serial reference, and print a summary.
//! * `--emit stats`: execute and print the event counters + modelled time.
//! * `--tune`: auto-tune x / shared budget / pipeline depth with the cost
//!   model before compiling (SAM-style install-time tuning).

use plr_codegen::exec::{self, ExecOptions};
use plr_codegen::lower::LowerOptions;
use plr_codegen::plan::Optimizations;
use plr_codegen::Plr;
use plr_core::element::Element;
use plr_core::signature::Signature;
use plr_core::{serial, validate};
use plr_sim::CostModel;
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    signature: String,
    n: usize,
    ty: String,
    emit: String,
    no_opt: bool,
    tune: bool,
    device: String,
    lookback: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let signature = args.next().ok_or_else(usage)?;
    if signature == "--help" || signature == "-h" {
        return Err(usage());
    }
    let mut parsed = Args {
        signature,
        n: 1 << 24,
        ty: "int".to_owned(),
        emit: "cuda".to_owned(),
        no_opt: false,
        tune: false,
        device: "titan-x".to_owned(),
        lookback: 1,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--n" => parsed.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--type" => parsed.ty = value("--type")?,
            "--emit" => parsed.emit = value("--emit")?,
            "--no-opt" => parsed.no_opt = true,
            "--tune" => parsed.tune = true,
            "--device" => parsed.device = value("--device")?,
            "--lookback" => {
                parsed.lookback = value("--lookback")?
                    .parse()
                    .map_err(|e| format!("--lookback: {e}"))?
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(parsed)
}

fn usage() -> String {
    "usage: plrc \"<signature>\" [--n <len>] [--type int|long|float|double] \
     [--emit cuda|c|report|run|stats] [--no-opt] [--tune] \
     [--device titan-x|gtx-1080] [--lookback <d>]\n\
     example: plrc \"(1: 2, -1)\" --n 1048576 --emit run"
        .to_owned()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.ty.as_str() {
        "int" => drive::<i32>(&args),
        "long" => drive::<i64>(&args),
        "float" => drive::<f32>(&args),
        "double" => drive::<f64>(&args),
        other => Err(format!("unknown --type `{other}` (int|long|float|double)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("plrc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn drive<T: Element>(args: &Args) -> Result<(), String> {
    let sig: Signature<T> = args
        .signature
        .parse()
        .map_err(|e: plr_core::error::SignatureError| e.to_string())?;
    let device = match args.device.as_str() {
        "titan-x" => plr_sim::DeviceConfig::titan_x(),
        "gtx-1080" => plr_sim::DeviceConfig::gtx_1080(),
        other => return Err(format!("unknown --device `{other}` (titan-x|gtx-1080)")),
    };
    let opts = if args.no_opt {
        Optimizations::none()
    } else {
        Optimizations::all()
    };
    let mut lower_options = LowerOptions {
        opts,
        ..Default::default()
    };
    if args.tune {
        let tuned = plr_codegen::tune::tune(
            &sig,
            args.n,
            &device,
            &plr_codegen::tune::TuneSpace::default(),
        );
        eprintln!(
            "tuned: x={:?} shared={} depth={} ({} configs, modelled speedup {:.2}x)",
            tuned.options.x_override,
            tuned.options.shared_factor_budget,
            tuned.options.pipeline_depth,
            tuned.evaluated,
            tuned.speedup(),
        );
        lower_options = LowerOptions {
            opts,
            ..tuned.options
        };
    }
    let plr = Plr::new().with_device(device).with_options(lower_options);
    let compilation = plr.compile(&sig, args.n);

    match args.emit.as_str() {
        "cuda" => {
            lint_or_die(&compilation.cuda)?;
            println!("{}", compilation.cuda);
            Ok(())
        }
        "c" => {
            let src = plr_codegen::emit_c::c_source(&compilation.plan);
            lint_or_die(&src)?;
            println!("{src}");
            Ok(())
        }
        "report" => {
            println!("{}", plr_codegen::report::report(&compilation.plan));
            Ok(())
        }
        "run" | "stats" => {
            let n = args.n;
            let input: Vec<T> = (0..n)
                .map(|i| T::from_i32(((i * 37) % 25) as i32 - 12))
                .collect();
            let exec_opts = ExecOptions {
                lookback_delay: args.lookback,
            };
            let run = exec::execute(&compilation.plan, &input, plr.device(), &exec_opts);
            let expect = serial::run(&sig, &input);
            validate::validate(&expect, &run.output, validate::PAPER_FLOAT_TOLERANCE)
                .map_err(|e| format!("validation failed: {e}"))?;
            println!("signature  {}", sig);
            println!("n          {n}");
            println!(
                "chunk m    {} (x = {})",
                compilation.plan.chunk_size(),
                compilation.plan.x
            );
            println!("blocks     {}", run.workload.blocks);
            println!("validated  OK (vs serial reference)");
            if args.emit == "stats" {
                let model = CostModel::new(plr.device().clone());
                let t = run.time(&model);
                let c = &run.counters;
                println!("global rd  {} B", c.global_read_bytes);
                println!("global wr  {} B", c.global_write_bytes);
                println!("l2 misses  {} B", c.l2_read_miss_bytes);
                println!("shared     {}", c.shared_accesses);
                println!("shuffles   {}", c.shuffles);
                println!("flops      {}", c.flops);
                println!("atomics    {}", c.atomics);
                println!("model time {:.3} ms", t.total * 1e3);
                println!(
                    "throughput {:.2} G elements/s",
                    run.throughput(&model) / 1e9
                );
            }
            Ok(())
        }
        other => Err(format!(
            "unknown --emit `{other}` (cuda|c|report|run|stats)"
        )),
    }
}

/// Refuses to print a structurally broken source.
fn lint_or_die(source: &str) -> Result<(), String> {
    plr_codegen::lint::lint(source).map_err(|errs| {
        let mut msg = String::from("emitted source failed the structural lint:");
        for e in errs.iter().take(5) {
            msg.push_str(&format!("\n  {e}"));
        }
        msg
    })
}
