//! Structural linting of emitted sources.
//!
//! The reproduction environment has no CUDA toolchain, so the emitted
//! sources cannot be compiled here. This lint enforces the properties a
//! compiler would catch immediately — balanced delimiters, no unterminated
//! strings or comments, and no references to factor identifiers that were
//! never defined (the classic specialization bug: emitting `ldfact1(...)`
//! after suppressing list 1's array). Every emitted source is linted in
//! tests and by `plrc` before printing.

/// A structural problem found in an emitted source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintError {
    /// 1-based line of the problem (0 when file-level).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Lints an emitted C/CUDA source.
///
/// # Errors
///
/// Returns every structural problem found (empty means clean).
pub fn lint(source: &str) -> Result<(), Vec<LintError>> {
    let mut errors = Vec::new();
    check_balance(source, &mut errors);
    check_identifiers(source, &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Balanced `{} () []` outside strings, char literals, and comments.
fn check_balance(source: &str, errors: &mut Vec<LintError>) {
    let mut stack: Vec<(char, usize)> = Vec::new();
    let mut line = 1usize;
    let mut chars = source.chars().peekable();
    let mut in_line_comment = false;
    let mut in_block_comment = false;
    let mut in_string = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        if c == '\n' {
            line += 1;
            in_line_comment = false;
            continue;
        }
        if in_line_comment {
            continue;
        }
        if in_block_comment {
            if c == '*' && chars.peek() == Some(&'/') {
                chars.next();
                in_block_comment = false;
            }
            continue;
        }
        if in_string {
            if c == '\\' {
                chars.next();
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        if in_char {
            if c == '\\' {
                chars.next();
            } else if c == '\'' {
                in_char = false;
            }
            continue;
        }
        match c {
            '/' if chars.peek() == Some(&'/') => in_line_comment = true,
            '/' if chars.peek() == Some(&'*') => {
                chars.next();
                in_block_comment = true;
            }
            '"' => in_string = true,
            '\'' => in_char = true,
            '{' | '(' | '[' => stack.push((c, line)),
            '}' | ')' | ']' => {
                let expect = match c {
                    '}' => '{',
                    ')' => '(',
                    _ => '[',
                };
                match stack.pop() {
                    Some((open, _)) if open == expect => {}
                    Some((open, open_line)) => errors.push(LintError {
                        line,
                        message: format!("mismatched `{c}` closing `{open}` from line {open_line}"),
                    }),
                    None => errors.push(LintError {
                        line,
                        message: format!("unmatched closing `{c}`"),
                    }),
                }
            }
            _ => {}
        }
    }
    for (open, open_line) in stack {
        errors.push(LintError {
            line: open_line,
            message: format!("unclosed `{open}`"),
        });
    }
    if in_block_comment {
        errors.push(LintError {
            line,
            message: "unterminated block comment".to_owned(),
        });
    }
    if in_string {
        errors.push(LintError {
            line,
            message: "unterminated string literal".to_owned(),
        });
    }
}

/// Every referenced `FACT*` / `ldfact*` / `sfact*` identifier must be
/// defined somewhere in the source.
fn check_identifiers(source: &str, errors: &mut Vec<LintError>) {
    let idents = |s: &str| -> Vec<(usize, String)> {
        let mut found = Vec::new();
        for (lineno, raw) in s.lines().enumerate() {
            // Identifiers in comments are prose, not references (the
            // emitters only use line comments).
            let line = raw.split("//").next().unwrap_or(raw);
            let bytes = line.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    let word = &line[start..i];
                    if word.starts_with("FACT")
                        || word.starts_with("ldfact")
                        || word.starts_with("sfact")
                    {
                        found.push((lineno + 1, word.to_owned()));
                    }
                } else {
                    i += 1;
                }
            }
        }
        found
    };
    // Definitions: lines that introduce the identifier (declaration,
    // #define, or const).
    let mut defined: std::collections::HashSet<String> = std::collections::HashSet::new();
    for line in source.lines() {
        let t = line.trim_start();
        let is_def = t.starts_with("#define")
            || t.starts_with("static const")
            || t.starts_with("static __device__ const")
            || t.starts_with("__constant__")
            || t.starts_with("__shared__");
        if is_def {
            for (_, w) in idents(line) {
                defined.insert(w);
            }
        }
    }
    for (line, word) in idents(source) {
        if !defined.contains(&word) {
            errors.push(LintError {
                line,
                message: format!("`{word}` referenced but never defined"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, LowerOptions};
    use crate::plan::Optimizations;
    use crate::{emit, emit_c};
    use plr_core::prefix;
    use plr_core::signature::Signature;
    use plr_sim::DeviceConfig;

    #[test]
    fn detects_unbalanced_braces() {
        let errs = lint("int f() { if (x) { }").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unclosed")));
    }

    #[test]
    fn detects_mismatched_delimiters() {
        let errs = lint("int f() { (a] }").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("mismatched")));
    }

    #[test]
    fn ignores_braces_in_strings_and_comments() {
        lint("// } } }\nint f() { const char* s = \"}}}\"; /* { */ return 0; }").unwrap();
        lint("int f() { char c = '{'; return 0; }").unwrap();
    }

    #[test]
    fn detects_undefined_factor_identifiers() {
        let errs = lint("int f() { return FACT7[3]; }").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("FACT7")));
        lint("static const int FACT7[2] = {1, 2};\nint f() { return FACT7[1]; }").unwrap();
    }

    #[test]
    fn every_emitted_source_is_clean() {
        let device = DeviceConfig::titan_x();
        let texts = ["1:1", "1:0,1", "1:0,0,1", "1:2,-1", "1:3,-3,1"];
        for text in texts {
            let sig: Signature<i64> = text.parse().unwrap();
            for opts in [Optimizations::all(), Optimizations::none()] {
                let plan = lower(
                    &sig,
                    1 << 22,
                    &device,
                    &LowerOptions {
                        opts,
                        ..Default::default()
                    },
                );
                lint(&emit::cuda_source(&plan))
                    .unwrap_or_else(|e| panic!("CUDA lint for {text} ({opts:?}): {e:?}"));
                lint(&emit_c::c_source(&plan))
                    .unwrap_or_else(|e| panic!("C lint for {text} ({opts:?}): {e:?}"));
            }
        }
        // Float filters too (decay truncation changes the emitted arrays).
        for entry in prefix::catalog().iter().filter(|e| !e.integral) {
            let sig: Signature<f32> = entry.signature.cast();
            let plan = lower(&sig, 1 << 22, &device, &LowerOptions::default());
            lint(&emit::cuda_source(&plan))
                .unwrap_or_else(|e| panic!("CUDA lint for {}: {e:?}", entry.id));
            lint(&emit_c::c_source(&plan))
                .unwrap_or_else(|e| panic!("C lint for {}: {e:?}", entry.id));
        }
    }
}
