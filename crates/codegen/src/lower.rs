//! Lowering: signature → kernel plan.
//!
//! Implements the paper's Section 3 parameter heuristics verbatim:
//!
//! * each thread block has 1024 threads and processes a chunk of
//!   `m = 1024·x` values;
//! * `x` is the smallest integer with `x·1024·T > n`, where `T` is the
//!   number of blocks the device can hold concurrently; `x ≤ 9` for
//!   floating-point signatures and `x ≤ 11` for integer signatures;
//! * 32 registers per thread for floating-point signatures and integer
//!   signatures containing only zeros and ones; 64 for other integer
//!   signatures.

use crate::plan::{KernelPlan, Optimizations};
use plr_core::analysis;
use plr_core::element::Element;
use plr_core::nacci::CorrectionTable;
use plr_core::signature::Signature;
use plr_sim::DeviceConfig;

/// Tunables of the lowering step (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerOptions {
    /// Enabled code optimizations.
    pub opts: Optimizations,
    /// Maximum decoupled look-back distance (32: one warp of carries).
    pub pipeline_depth: usize,
    /// Shared-memory factor-buffer budget per list, in entries (1024).
    pub shared_factor_budget: usize,
    /// Override the values-per-thread heuristic with a fixed `x` (still
    /// clamped to the type's cap). The paper leaves tuning `m`/`x` as
    /// future work and notes SAM auto-tunes this; the override is the hook
    /// for such tuning and for the ablation study in `plr-bench`.
    pub x_override: Option<usize>,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            opts: Optimizations::all(),
            pipeline_depth: 32,
            shared_factor_budget: 1024,
            x_override: None,
        }
    }
}

/// The paper's cap on values per thread.
fn x_cap<T: Element>() -> usize {
    if T::IS_FLOAT {
        9
    } else {
        11
    }
}

/// Lowers `signature` for an `n`-element input on `device`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn lower<T: Element>(
    signature: &Signature<T>,
    n: usize,
    device: &DeviceConfig,
    options: &LowerOptions,
) -> KernelPlan<T> {
    assert!(n > 0, "cannot lower for an empty input");
    let threads_per_block = device.max_threads_per_block;
    let registers_per_thread = if T::IS_FLOAT || signature.is_zero_one() {
        32
    } else {
        64
    };
    let resident_blocks = device.resident_blocks(threads_per_block, registers_per_thread);

    // x: smallest integer with x·1024·T > n, capped — unless overridden.
    let denom = threads_per_block * resident_blocks;
    let x = options
        .x_override
        .unwrap_or(n / denom + 1)
        .min(x_cap::<T>())
        .max(1);
    let m = threads_per_block * x;

    let (fir, recursive) = signature.split();
    let flush = options.opts.decay_truncation && T::IS_FLOAT;
    let table = CorrectionTable::generate_with(recursive.feedback(), m, flush);
    let analysis = analysis::analyze_table(&table);

    KernelPlan {
        signature: signature.clone(),
        fir,
        x,
        threads_per_block,
        registers_per_thread,
        resident_blocks,
        pipeline_depth: options.pipeline_depth,
        shared_factor_budget: if options.opts.shared_buffering {
            options.shared_factor_budget
        } else {
            0
        },
        opts: options.opts,
        table,
        analysis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceConfig {
        DeviceConfig::titan_x()
    }

    #[test]
    fn register_heuristic_matches_paper() {
        let psum: Signature<i32> = "1:1".parse().unwrap();
        let p = lower(&psum, 1 << 20, &device(), &LowerOptions::default());
        assert_eq!(p.registers_per_thread, 32, "zero/one integer signature");

        let order2: Signature<i32> = "1:2,-1".parse().unwrap();
        let p = lower(&order2, 1 << 20, &device(), &LowerOptions::default());
        assert_eq!(p.registers_per_thread, 64, "complex integer signature");

        let filt: Signature<f32> = "0.2:0.8".parse().unwrap();
        let p = lower(&filt, 1 << 20, &device(), &LowerOptions::default());
        assert_eq!(p.registers_per_thread, 32, "floating-point signature");
    }

    #[test]
    fn x_grows_with_input_and_saturates_at_cap() {
        let sig: Signature<i32> = "1:1".parse().unwrap();
        // 32-register blocks: T = 48, so x·1024·48 > n.
        let small = lower(&sig, 1 << 14, &device(), &LowerOptions::default());
        assert_eq!(small.x, 1);
        let medium = lower(&sig, 100_000, &device(), &LowerOptions::default());
        assert_eq!(medium.x, 100_000 / (1024 * 48) + 1); // = 3
        let huge = lower(&sig, 1 << 30, &device(), &LowerOptions::default());
        assert_eq!(huge.x, 11, "integer cap");

        let f: Signature<f32> = "0.2:0.8".parse().unwrap();
        let huge_f = lower(&f, 1 << 30, &device(), &LowerOptions::default());
        assert_eq!(huge_f.x, 9, "floating-point cap");
        assert_eq!(huge_f.chunk_size(), 9 * 1024);
    }

    #[test]
    fn boundary_of_x_selection() {
        let sig: Signature<i32> = "1:1".parse().unwrap();
        let denom = 1024 * 48;
        // Exactly n = x·1024·T does NOT satisfy the strict inequality.
        let p = lower(&sig, denom, &device(), &LowerOptions::default());
        assert_eq!(p.x, 2);
        let p = lower(&sig, denom - 1, &device(), &LowerOptions::default());
        assert_eq!(p.x, 1);
    }

    #[test]
    fn resident_blocks_reflect_register_budget() {
        let psum: Signature<i32> = "1:1".parse().unwrap();
        assert_eq!(
            lower(&psum, 1024, &device(), &LowerOptions::default()).resident_blocks,
            48
        );
        let order2: Signature<i32> = "1:2,-1".parse().unwrap();
        assert_eq!(
            lower(&order2, 1024, &device(), &LowerOptions::default()).resident_blocks,
            24
        );
    }

    #[test]
    fn disabled_shared_buffering_zeroes_budget() {
        let sig: Signature<i32> = "1:2,-1".parse().unwrap();
        let o = LowerOptions {
            opts: Optimizations::none(),
            ..Default::default()
        };
        let p = lower(&sig, 1 << 20, &device(), &o);
        assert_eq!(p.shared_factor_budget, 0);
    }

    #[test]
    fn float_tables_are_flushed_only_with_decay_truncation() {
        let sig: Signature<f32> = "0.2:0.8".parse().unwrap();
        let p_on = lower(&sig, 1 << 22, &device(), &LowerOptions::default());
        // 0.8^n underflows f32 near n ≈ 392 < m.
        assert!(p_on.table.list(0).contains(&0.0));
        let o = LowerOptions {
            opts: Optimizations::none(),
            ..Default::default()
        };
        let p_off = lower(&sig, 1 << 22, &device(), &o);
        assert!(p_off.table.list(0).iter().all(|&v| v != 0.0));
    }

    #[test]
    fn table_length_equals_chunk_size() {
        let sig: Signature<i64> = "1:3,-3,1".parse().unwrap();
        let p = lower(&sig, 1 << 26, &device(), &LowerOptions::default());
        assert_eq!(p.table.len(), p.chunk_size());
        assert_eq!(p.table.order(), 3);
    }
}
