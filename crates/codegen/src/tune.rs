//! Auto-tuning of the lowering parameters — the paper's stated future
//! work ("optimizing these parameters in PLR is left for future work";
//! "SAM uses an auto-tuner to find the best value of x").
//!
//! The tuner searches the lowering space — values per thread `x`, the
//! shared-memory factor budget, and the pipeline depth — with the analytic
//! cost model as the objective, exactly the way SAM's install-time tuner
//! measures candidate configurations. Because every candidate executes the
//! same algorithm, tuning can never change results (property-tested), only
//! the modelled time.

use crate::exec::{self, ExecOptions};
use crate::lower::{lower, LowerOptions};
use crate::plan::KernelPlan;
use plr_core::element::Element;
use plr_core::signature::Signature;
use plr_sim::{CostModel, DeviceConfig};

/// The search space of the tuner.
#[derive(Debug, Clone)]
pub struct TuneSpace {
    /// Candidate values per thread (clamped to the type cap at lowering).
    pub x: Vec<usize>,
    /// Candidate shared-memory factor budgets (entries per list).
    pub shared_factor_budget: Vec<usize>,
    /// Candidate pipeline depths.
    pub pipeline_depth: Vec<usize>,
}

impl Default for TuneSpace {
    fn default() -> Self {
        TuneSpace {
            x: (1..=11).collect(),
            shared_factor_budget: vec![0, 256, 1024, 4096, 16384],
            pipeline_depth: vec![8, 32, 64],
        }
    }
}

/// A tuning outcome: the winning options and the modelled comparison.
#[derive(Debug, Clone)]
pub struct Tuned {
    /// The winning lowering options.
    pub options: LowerOptions,
    /// Modelled time of the winner, in seconds.
    pub tuned_time: f64,
    /// Modelled time of the paper's heuristic defaults, in seconds.
    pub heuristic_time: f64,
    /// Number of candidate configurations evaluated.
    pub evaluated: usize,
}

impl Tuned {
    /// Modelled speedup of the tuned configuration over the heuristic.
    pub fn speedup(&self) -> f64 {
        self.heuristic_time / self.tuned_time
    }
}

/// Searches `space` for the configuration minimizing modelled time for
/// `signature` at input size `n`.
///
/// The search is exhaustive over the (small) space, matching SAM's
/// per-problem-size install-time tuning.
pub fn tune<T: Element>(
    signature: &Signature<T>,
    n: usize,
    device: &DeviceConfig,
    space: &TuneSpace,
) -> Tuned {
    let model = CostModel::new(device.clone());
    let time_of = |options: &LowerOptions| -> f64 {
        let plan = lower(signature, n, device, options);
        let run = exec::estimate(&plan, n, device, &ExecOptions::default());
        run.time(&model).total
    };

    let heuristic = LowerOptions::default();
    let heuristic_time = time_of(&heuristic);

    let mut best = (heuristic_time, heuristic);
    let mut evaluated = 1;
    for &x in &space.x {
        for &budget in &space.shared_factor_budget {
            for &depth in &space.pipeline_depth {
                let options = LowerOptions {
                    x_override: Some(x),
                    shared_factor_budget: budget,
                    pipeline_depth: depth,
                    ..Default::default()
                };
                let t = time_of(&options);
                evaluated += 1;
                if t < best.0 {
                    best = (t, options);
                }
            }
        }
    }
    Tuned {
        options: best.1,
        tuned_time: best.0,
        heuristic_time,
        evaluated,
    }
}

/// Convenience: lower with the tuned options.
pub fn tuned_plan<T: Element>(
    signature: &Signature<T>,
    n: usize,
    device: &DeviceConfig,
) -> KernelPlan<T> {
    let tuned = tune(signature, n, device, &TuneSpace::default());
    lower(signature, n, device, &tuned.options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::prefix;
    use plr_core::serial;

    fn device() -> DeviceConfig {
        DeviceConfig::titan_x()
    }

    /// A reduced space keeping unit-test runtime reasonable.
    fn small_space() -> TuneSpace {
        TuneSpace {
            x: vec![1, 3, 6, 11],
            shared_factor_budget: vec![0, 1024, 16384],
            pipeline_depth: vec![32],
        }
    }

    #[test]
    fn tuned_is_never_slower_than_the_heuristic() {
        for n in [1usize << 16, 1 << 22, 1 << 26] {
            for sig in [
                prefix::prefix_sum::<i32>(),
                prefix::higher_order_prefix_sum::<i32>(2),
            ] {
                let t = tune(&sig, n, &device(), &small_space());
                assert!(
                    t.tuned_time <= t.heuristic_time + 1e-12,
                    "{sig} at {n}: tuned {:.3e} vs heuristic {:.3e}",
                    t.tuned_time,
                    t.heuristic_time
                );
                assert!(t.evaluated > 10);
            }
        }
    }

    #[test]
    fn tuner_finds_the_shared_budget_win_for_dense_factors() {
        // The paper conjectures buffering more than 1024 factors would help
        // higher-order prefix sums; the tuner should discover that.
        let sig = prefix::higher_order_prefix_sum::<i32>(2);
        let t = tune(&sig, 1 << 26, &device(), &small_space());
        assert!(
            t.speedup() > 1.2,
            "expected a clear tuning win on dense factors, got {:.2}x",
            t.speedup()
        );
        let chosen = t.options.shared_factor_budget;
        assert!(
            chosen > 1024,
            "tuner should pick a larger budget, picked {chosen}"
        );
    }

    #[test]
    fn tuned_plans_compute_the_same_results() {
        let sig: Signature<i64> = "1: 3, -3, 1".parse().unwrap();
        let n = 60_000;
        let input: Vec<i64> = (0..n).map(|i| (i % 13) as i64 - 6).collect();
        let device = device();
        let plan = tuned_plan(&sig, n, &device);
        let run = exec::execute(&plan, &input, &device, &ExecOptions::default());
        assert_eq!(run.output, serial::run(&sig, &input));
    }

    #[test]
    fn small_inputs_benefit_from_tuning() {
        // The paper: "we could add better heuristics to boost the
        // performance on small inputs". On the model the dominant small-n
        // cost is the exposed carry-chain fill (one hop per in-flight
        // chunk), so the tuner picks larger tiles than the heuristic's
        // x = 1 and wins clearly.
        let sig = prefix::prefix_sum::<i32>();
        let t = tune(&sig, 1 << 15, &device(), &small_space());
        assert!(
            t.speedup() > 1.5,
            "tuning should clearly beat the heuristic at 2^15, got {:.2}x",
            t.speedup()
        );
        let x = t.options.x_override.unwrap_or(1);
        assert!(
            x > 1,
            "the heuristic's x = 1 should not be optimal at tiny sizes"
        );
    }
}
