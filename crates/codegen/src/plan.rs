//! The kernel-plan intermediate representation.
//!
//! PLR's code generation is structurally fixed — the paper's Section 3
//! enumerates eight code sections — so the IR is a *configuration* of that
//! fixed structure rather than a general instruction list: the signature,
//! the chunk-size/register heuristics, the precomputed correction table,
//! its pattern analysis, and the enabled optimizations. The same plan
//! drives both the CUDA source emitter and the machine-model executor.

use plr_core::analysis::{self, TableAnalysis};
use plr_core::element::Element;
use plr_core::nacci::CorrectionTable;
use plr_core::signature::Signature;

/// Which domain-specific optimizations are enabled (paper Section 3.1).
///
/// `Optimizations::all()` is PLR's default; `Optimizations::none()` is the
/// "optimizations off" configuration of the paper's Figure 10, in which the
/// correction factors are always loaded from global memory and no special
/// code is emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Optimizations {
    /// Emit specialized code for constant / zero-one / periodic factor
    /// lists instead of array loads.
    pub factor_specialization: bool,
    /// Buffer the first entries (up to 1024) of each factor list in shared
    /// memory.
    pub shared_buffering: bool,
    /// Flush denormal factors to zero and skip correction code past the
    /// decay point (stable IIR filters).
    pub decay_truncation: bool,
    /// Suppress the distance-k factor array when it is a shifted/scaled
    /// copy of the distance-1 array (paper future work, implemented here).
    pub suppress_shifted_duplicate: bool,
}

impl Optimizations {
    /// Every optimization enabled (PLR's default behaviour).
    pub fn all() -> Self {
        Optimizations {
            factor_specialization: true,
            shared_buffering: true,
            decay_truncation: true,
            suppress_shifted_duplicate: true,
        }
    }

    /// Every optimization disabled (Figure 10's "optimizations off").
    pub fn none() -> Self {
        Optimizations {
            factor_specialization: false,
            shared_buffering: false,
            decay_truncation: false,
            suppress_shifted_duplicate: false,
        }
    }
}

impl Default for Optimizations {
    fn default() -> Self {
        Self::all()
    }
}

/// A lowered, ready-to-emit/execute kernel configuration.
#[derive(Debug, Clone)]
pub struct KernelPlan<T> {
    /// The full input signature.
    pub signature: Signature<T>,
    /// The feed-forward (FIR/map) coefficients from the two-stage split.
    pub fir: Vec<T>,
    /// Values per thread (`x`); the chunk size is `threads_per_block · x`.
    pub x: usize,
    /// Threads per block (1024 on the paper's hardware).
    pub threads_per_block: usize,
    /// Register budget per thread (32, or 64 for complex integer
    /// signatures), which limits block residency.
    pub registers_per_thread: usize,
    /// Resident blocks `T` used by the chunk-size heuristic.
    pub resident_blocks: usize,
    /// Maximum decoupled look-back window (the paper uses 32 so one warp
    /// can handle the carries).
    pub pipeline_depth: usize,
    /// Shared-memory factor-buffer budget per list, in entries.
    pub shared_factor_budget: usize,
    /// Enabled optimizations.
    pub opts: Optimizations,
    /// The precomputed correction-factor table of length `chunk_size()`.
    pub table: CorrectionTable<T>,
    /// Pattern analysis of `table` (drives specialization).
    pub analysis: TableAnalysis<T>,
}

impl<T: Element> KernelPlan<T> {
    /// The Phase 1 terminal chunk size `m = threads_per_block · x`.
    pub fn chunk_size(&self) -> usize {
        self.threads_per_block * self.x
    }

    /// The recurrence order `k`.
    pub fn order(&self) -> usize {
        self.signature.order()
    }

    /// Number of thread blocks (= chunks) launched for an `n`-element input.
    pub fn blocks_for(&self, n: usize) -> usize {
        n.div_ceil(self.chunk_size())
    }

    /// Whether the plan treats this factor list as fully specialized
    /// (no array materialized): constant, zero/one, all-zero — or a
    /// suppressed shifted duplicate of list 0.
    pub fn list_is_inline(&self, r: usize) -> bool {
        use analysis::FactorPattern as P;
        if !self.opts.factor_specialization {
            return false;
        }
        let by_pattern = matches!(
            self.analysis.patterns[r],
            P::AllZero | P::Constant(_) | P::ZeroOne(_)
        );
        let suppressed = self.opts.suppress_shifted_duplicate
            && self.analysis.first_last_shifted
            && r == self.order() - 1
            && self.order() > 1
            // Only suppress when list 0 itself stays addressable as an
            // array (otherwise there is nothing to derive from — though
            // if list 0 is inline, list k-1's pattern is inline too).
            && !matches!(self.analysis.patterns[0], P::AllZero | P::Constant(_) | P::ZeroOne(_));
        by_pattern || suppressed
    }

    /// Number of factor arrays that must be materialized in the emitted
    /// code / device memory.
    pub fn materialized_lists(&self) -> usize {
        (0..self.order())
            .filter(|&r| !self.list_is_inline(r))
            .count()
    }

    /// Number of carry lists whose factors must be fetched from global
    /// memory with a per-element index (no specialization, and longer than
    /// the shared-memory buffer). The suppressed shifted duplicate still
    /// loads through list 0's storage, so it counts when list 0 does.
    pub fn dense_indexed_lists(&self) -> usize {
        use analysis::FactorPattern as P;
        (0..self.order())
            .filter(|&r| {
                let specialized = self.opts.factor_specialization
                    && matches!(
                        self.analysis.patterns[r],
                        P::AllZero | P::Constant(_) | P::ZeroOne(_)
                    );
                if specialized {
                    return false;
                }
                let active = match self.analysis.patterns[r] {
                    P::DecaysAfter { decay_len } if self.opts.decay_truncation => decay_len,
                    _ => self.chunk_size(),
                };
                active > self.shared_factor_budget
            })
            .count()
    }

    /// Empirical compute-throughput derate for this plan (see
    /// [`plr_sim::timing::Workload::compute_efficiency`]).
    ///
    /// Per-element indexed factor loads from global memory saturate the
    /// load-store pipeline and conflict in the L2 in ways the instruction
    /// counter cannot see; the paper's Figures 4/5 (higher-order prefix
    /// sums, where no factor specialization applies) quantify the effect,
    /// and this derate is calibrated to them.
    pub fn compute_efficiency(&self) -> f64 {
        if self.dense_indexed_lists() > 0 {
            0.33
        } else {
            1.0
        }
    }

    /// Empirical bandwidth derate for this plan (see
    /// [`plr_sim::timing::Workload::bandwidth_efficiency`]).
    ///
    /// Three calibrated effects from the paper:
    /// * plans with dense per-element indexed factor loads are pinned well
    ///   below the streaming roof — the measured higher-order prefix sums
    ///   sit near 14 billion words/s at every order (Figures 4/5), so the
    ///   derate is a small table in the number of dense lists rather than
    ///   proportional to the load count;
    /// * stable filters do almost no arithmetic once the factors decay, yet
    ///   measured throughput still drops ~35% per extra stage (Figures
    ///   6–8: 33/24/18 billion floats/s) — the longer carry dependency
    ///   window costs achievable bandwidth;
    /// * the map stage for extra non-recursive coefficients consistently
    ///   costs ~17% irrespective of order (Figure 9 discussion).
    pub fn bandwidth_efficiency(&self) -> f64 {
        use analysis::FactorPattern as P;
        let k = self.order();
        let mut eff = match self.dense_indexed_lists() {
            0 => 1.0,
            1 => 0.68,
            d => (0.425 - 0.01 * (d as f64 - 2.0)).max(0.30),
        };
        let all_decayed = self.opts.decay_truncation
            && self
                .analysis
                .patterns
                .iter()
                .all(|p| matches!(p, P::DecaysAfter { .. } | P::AllZero));
        if all_decayed {
            eff /= 1.0 + 0.35 * (k as f64 - 1.0);
        }
        if self.fir.len() > 1 {
            eff /= 1.17;
        }
        // Conditional-add masks whose period is not a power of two (e.g.
        // the 3-tuple prefix sum) need modulo indexing, which blocks the
        // vectorized access path; powers of two keep full speed — the
        // paper's Section 6.1.2 ("the performance advantage of PLR is
        // higher on tuple sizes that are powers of two", with 4-tuple
        // beating 3-tuple).
        if self.opts.factor_specialization {
            let awkward_period = self.analysis.patterns.iter().any(|p| match p {
                analysis::FactorPattern::ZeroOne(mask) => {
                    zero_one_mask_period(mask).is_some_and(|p| !p.is_power_of_two())
                }
                _ => false,
            });
            if awkward_period {
                eff *= 0.77;
            }
        }
        eff
    }
}

/// The period of a 0/1 mask with a single 1 per period, if it has one.
fn zero_one_mask_period(mask: &[bool]) -> Option<usize> {
    let first = mask.iter().position(|&b| b)?;
    let second = mask.iter().skip(first + 1).position(|&b| b)? + first + 1;
    let period = second - first;
    mask.iter()
        .enumerate()
        .all(|(i, &b)| b == (i % period == first % period))
        .then_some(period)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, LowerOptions};
    use plr_sim::DeviceConfig;

    fn plan_for(text: &str, n: usize, opts: Optimizations) -> KernelPlan<i64> {
        let sig: Signature<i64> = text.parse().unwrap();
        lower(
            &sig,
            n,
            &DeviceConfig::titan_x(),
            &LowerOptions {
                opts,
                ..Default::default()
            },
        )
    }

    #[test]
    fn optimizations_toggle() {
        assert!(Optimizations::all().shared_buffering);
        assert!(!Optimizations::none().factor_specialization);
        assert_eq!(Optimizations::default(), Optimizations::all());
    }

    #[test]
    fn prefix_sum_factor_list_is_inline() {
        let p = plan_for("1:1", 1 << 20, Optimizations::all());
        assert!(p.list_is_inline(0));
        assert_eq!(p.materialized_lists(), 0);
    }

    #[test]
    fn tuple_lists_are_inline_zero_one() {
        let p = plan_for("1:0,1", 1 << 20, Optimizations::all());
        assert!(p.list_is_inline(0));
        assert!(p.list_is_inline(1));
        assert_eq!(p.materialized_lists(), 0);
    }

    #[test]
    fn second_order_suppresses_shifted_duplicate() {
        let p = plan_for("1:2,-1", 1 << 20, Optimizations::all());
        assert!(!p.list_is_inline(0));
        assert!(
            p.list_is_inline(1),
            "last list is a scaled shift of the first"
        );
        assert_eq!(p.materialized_lists(), 1);
    }

    #[test]
    fn optimizations_off_materializes_everything() {
        let p = plan_for("1:2,-1", 1 << 20, Optimizations::none());
        assert!(!p.list_is_inline(0));
        assert!(!p.list_is_inline(1));
        assert_eq!(p.materialized_lists(), 2);
    }
}
