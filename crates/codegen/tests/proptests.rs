//! Property tests for the compiler: any valid integer signature must
//! compile, its simulated execution must match the serial reference
//! exactly, and every optimization toggle must preserve semantics.

use plr_codegen::exec::{execute, ExecOptions};
use plr_codegen::lower::{lower, LowerOptions};
use plr_codegen::plan::Optimizations;
use plr_codegen::{emit, emit_c};
use plr_core::serial;
use plr_core::signature::Signature;
use plr_sim::DeviceConfig;
use proptest::prelude::*;

fn int_signature() -> impl Strategy<Value = Signature<i64>> {
    let coeff = -3i64..=3;
    let nonzero = prop_oneof![-3i64..=-1, 1i64..=3];
    (
        proptest::collection::vec(coeff.clone(), 0..3),
        nonzero.clone(),
        proptest::collection::vec(coeff, 0..3),
        nonzero,
    )
        .prop_map(|(mut ff, ff_last, mut fb, fb_last)| {
            ff.push(ff_last);
            fb.push(fb_last);
            Signature::new(ff, fb).expect("nonzero trailing coefficients")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn simulated_kernel_matches_serial_for_arbitrary_signatures(
        sig in int_signature(),
        input in proptest::collection::vec(-30i64..30, 1..5000),
        no_opt in proptest::bool::ANY,
        delay in 1usize..5,
    ) {
        let device = DeviceConfig::titan_x();
        let opts = if no_opt { Optimizations::none() } else { Optimizations::all() };
        let plan = lower(
            &sig,
            input.len(),
            &device,
            &LowerOptions { opts, ..Default::default() },
        );
        let run = execute(&plan, &input, &device, &ExecOptions { lookback_delay: delay });
        let expect = serial::run(&sig, &input);
        prop_assert_eq!(run.output, expect, "{} no_opt={} delay={}", &sig, no_opt, delay);
    }

    #[test]
    fn emitters_never_panic_and_produce_nonempty_sources(
        sig in int_signature(),
        log_n in 10usize..28,
    ) {
        let device = DeviceConfig::titan_x();
        let plan = lower(&sig, 1 << log_n, &device, &LowerOptions::default());
        let cuda = emit::cuda_source(&plan);
        prop_assert!(cuda.contains("__global__ void plr_kernel"));
        let c = emit_c::c_source(&plan);
        prop_assert!(c.contains("void plr_run("));
        let report = plr_codegen::report::report(&plan);
        prop_assert!(!report.to_string().is_empty());
    }

    #[test]
    fn x_override_never_changes_results(
        input in proptest::collection::vec(-20i64..20, 1..4000),
        x in 1usize..12,
    ) {
        let device = DeviceConfig::titan_x();
        let sig: Signature<i64> = "1: 2, -1".parse().unwrap();
        let plan = lower(
            &sig,
            input.len(),
            &device,
            &LowerOptions { x_override: Some(x), ..Default::default() },
        );
        let run = execute(&plan, &input, &device, &ExecOptions::default());
        prop_assert_eq!(run.output, serial::run(&sig, &input));
    }
}
