//! End-to-end tests of the `plrc` command-line compiler.

use std::process::Command;

fn plrc(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_plrc"))
        .args(args)
        .output()
        .expect("plrc runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn emits_cuda_by_default() {
    let (ok, stdout, _) = plrc(&["(1: 2, -1)"]);
    assert!(ok);
    assert!(stdout.contains("__global__ void plr_kernel"));
    assert!(stdout.contains("FACT0"));
}

#[test]
fn emits_c_and_reports() {
    let (ok, stdout, _) = plrc(&["(1: 0, 1)", "--emit", "c"]);
    assert!(ok);
    assert!(stdout.contains("void plr_run("));
    let (ok, stdout, _) = plrc(&["(0.2: 0.8)", "--type", "float", "--emit", "report"]);
    assert!(ok);
    assert!(stdout.contains("decays to zero"));
}

#[test]
fn runs_and_validates() {
    let (ok, stdout, _) = plrc(&["(1: 3, -3, 1)", "--n", "30000", "--emit", "run"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("validated  OK"));
}

#[test]
fn stats_mode_prints_counters() {
    let (ok, stdout, _) = plrc(&[
        "(1: 1)", "--n", "100000", "--emit", "stats", "--device", "gtx-1080",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("throughput"));
    assert!(stdout.contains("l2 misses"));
}

#[test]
fn tuned_compilation_works() {
    let (ok, stdout, stderr) = plrc(&["(1: 2, -1)", "--n", "65536", "--tune", "--emit", "run"]);
    assert!(ok, "{stdout}{stderr}");
    assert!(stderr.contains("tuned:"), "{stderr}");
    assert!(stdout.contains("validated  OK"));
}

#[test]
fn rejects_bad_input() {
    let (ok, _, stderr) = plrc(&["not a signature"]);
    assert!(!ok);
    assert!(stderr.contains("signature"));

    let (ok, _, stderr) = plrc(&["(1:1)", "--emit", "nonsense"]);
    assert!(!ok);
    assert!(stderr.contains("unknown --emit"));

    let (ok, _, stderr) = plrc(&["(1:1)", "--type", "quaternion"]);
    assert!(!ok);
    assert!(stderr.contains("unknown --type"));

    let (ok, _, stderr) = plrc(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn no_opt_flag_changes_the_emitted_code() {
    let (_, with_opt, _) = plrc(&["(1: 1)"]);
    let (_, without, _) = plrc(&["(1: 1)", "--no-opt"]);
    assert!(with_opt.contains("FACT0_CONST"));
    assert!(!without.contains("FACT0_CONST"));
    assert!(without.contains("static __device__ const val_t FACT0["));
}
