//! Property tests for the execution fabric and cache model.

use plr_core::nacci::CorrectionTable;
use plr_core::serial;
use plr_sim::cache::Cache;
use plr_sim::fabric::{self, FactorAccess, FactorListSpec};
use plr_sim::{DeviceConfig, GlobalMemory};
use proptest::prelude::*;

fn inline_access(k: usize, m: usize) -> FactorAccess {
    FactorAccess {
        lists: vec![
            FactorListSpec {
                inline: true,
                shared_limit: 0,
                active_len: m
            };
            k
        ],
        buffer: None,
        element_bytes: 4,
        table_len: m,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn block_local_solve_equals_serial_per_chunk(
        fb in proptest::collection::vec(-2i64..=2, 1..4),
        input in proptest::collection::vec(-15i64..15, 1..400),
        x in 1usize..6,
        warp_pow in 1usize..6,
    ) {
        prop_assume!(fb.last() != Some(&0));
        let m = 256usize;
        let table = CorrectionTable::generate(&fb, m);
        let access = inline_access(fb.len(), m);
        let mut mem = GlobalMemory::new(DeviceConfig::titan_x());
        let mut data = input.clone();
        for chunk in data.chunks_mut(m) {
            fabric::block_local_solve(
                &fb, &table, chunk, x, 1 << warp_pow, &access, &mut mem,
            );
        }
        let mut expect = input.clone();
        for chunk in expect.chunks_mut(m) {
            serial::recursive_in_place(&fb, chunk);
        }
        prop_assert_eq!(data, expect);
    }

    #[test]
    fn correct_with_carries_is_merge(
        fb in proptest::collection::vec(-2i64..=2, 1..4),
        left in proptest::collection::vec(-15i64..15, 1..60),
        right in proptest::collection::vec(-15i64..15, 1..60),
    ) {
        prop_assume!(fb.last() != Some(&0));
        let k = fb.len();
        let whole: Vec<i64> = left.iter().chain(right.iter()).copied().collect();
        let mut expect = whole.clone();
        serial::recursive_in_place(&fb, &mut expect);

        let mut l = left.clone();
        let mut r = right.clone();
        serial::recursive_in_place(&fb, &mut l);
        serial::recursive_in_place(&fb, &mut r);
        let table = CorrectionTable::generate(&fb, right.len());
        let carries = plr_core::nacci::carries_of(&l, k);
        let access = inline_access(k, right.len());
        let mut mem = GlobalMemory::new(DeviceConfig::titan_x());
        fabric::correct_with_carries(&table, &mut r, &carries, &access, &mut mem);
        prop_assert_eq!(&expect[left.len()..], r.as_slice());
    }

    #[test]
    fn cache_misses_bounded_by_lines_touched(
        ranges in proptest::collection::vec((0u64..4096, 1u64..256), 1..40),
    ) {
        let mut cache = Cache::new(1024, 2, 32); // 32 lines
        let mut total_line_touches = 0u64;
        for &(addr, len) in &ranges {
            cache.read(addr, len);
            let first = addr / 32;
            let last = (addr + len - 1) / 32;
            total_line_touches += last - first + 1;
        }
        prop_assert!(cache.read_misses() <= total_line_touches);
        prop_assert_eq!(cache.read_misses() + cache.read_hits(), total_line_touches);
    }

    #[test]
    fn repeated_small_working_set_eventually_all_hits(
        lines in 1u64..16, // within the 32-line capacity / associativity reach
    ) {
        let mut cache = Cache::new(1024, 2, 32);
        let bytes = lines * 32;
        cache.read(0, bytes);
        let after_warmup = cache.read_misses();
        cache.read(0, bytes);
        prop_assert_eq!(cache.read_misses(), after_warmup, "second pass must hit");
    }
}
