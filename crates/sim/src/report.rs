//! The common result type for simulated executions.
//!
//! Every executor in this workspace — the PLR kernel interpreter in
//! `plr-codegen` and each baseline in `plr-baselines` — produces a
//! [`RunReport`]: the computed output (validated against the serial
//! reference), the accumulated event counters, the structural workload
//! description for the timing model, and the peak device allocation.

use crate::counters::Counters;
use crate::timing::{CostModel, TimeEstimate, Workload};

/// Result of executing (or cost-estimating) a recurrence computation on the
/// machine model.
#[derive(Debug, Clone)]
pub struct RunReport<T> {
    /// The computed output values (empty for cost-only estimates).
    pub output: Vec<T>,
    /// Accumulated event counters.
    pub counters: Counters,
    /// Structural workload description for the timing model.
    pub workload: Workload,
    /// Peak device-memory allocation in bytes (the paper's Table 2 metric).
    pub peak_bytes: u64,
}

impl<T> RunReport<T> {
    /// Evaluates the analytic timing model over this run.
    pub fn time(&self, model: &CostModel) -> TimeEstimate {
        model.time(&self.counters, &self.workload)
    }

    /// Modelled throughput in elements per second.
    pub fn throughput(&self, model: &CostModel) -> f64 {
        let est = self.time(model);
        model.throughput(&self.workload, &est)
    }

    /// Drops the output, keeping only the cost data (for estimates).
    pub fn without_output(mut self) -> Self {
        self.output = Vec::new();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    #[test]
    fn report_time_and_throughput() {
        let report = RunReport::<i32> {
            output: vec![],
            counters: Counters {
                global_read_bytes: 4 << 20,
                l2_read_miss_bytes: 4 << 20,
                global_write_bytes: 4 << 20,
                ..Counters::new()
            },
            workload: Workload {
                elements: 1 << 20,
                blocks: 256,
                threads_per_block: 1024,
                registers_per_thread: 32,
                exposed_hops: 32,
                launches: 1,
                compute_efficiency: 1.0,
                bandwidth_efficiency: 1.0,
            },
            peak_bytes: 0,
        };
        let model = CostModel::new(DeviceConfig::titan_x());
        let t = report.time(&model);
        assert!(t.total > 0.0);
        assert!(report.throughput(&model) > 0.0);
    }

    #[test]
    fn without_output_clears_values_only() {
        let report = RunReport {
            output: vec![1, 2, 3],
            counters: Counters {
                flops: 7,
                ..Counters::new()
            },
            workload: Workload {
                elements: 3,
                blocks: 1,
                threads_per_block: 1024,
                registers_per_thread: 32,
                exposed_hops: 0,
                launches: 1,
                compute_efficiency: 1.0,
                bandwidth_efficiency: 1.0,
            },
            peak_bytes: 9,
        };
        let r = report.without_output();
        assert!(r.output.is_empty());
        assert_eq!(r.counters.flops, 7);
        assert_eq!(r.peak_bytes, 9);
    }
}
