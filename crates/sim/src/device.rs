//! Device descriptions for the machine model.
//!
//! The paper evaluates on a GeForce GTX Titan X (Maxwell); its published
//! parameters (Section 5) are the default configuration. All model outputs
//! — traffic, cache misses, memory usage, analytic time — derive from these
//! numbers, so a different device can be modelled by swapping the config.

/// Hardware parameters of the simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sms: usize,
    /// Scalar cores per SM.
    pub cores_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Lanes per warp.
    pub warp_size: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Maximum thread contexts the whole device can hold.
    pub max_resident_threads: usize,
    /// Shared memory accessible from one block, in bytes.
    pub shared_mem_per_block: usize,
    /// Registers per SM.
    pub registers_per_sm: usize,
    /// L2 cache capacity in bytes.
    pub l2_bytes: usize,
    /// L2 line (sector) size in bytes; the paper's nvprof counts use 32 B.
    pub l2_line_bytes: usize,
    /// Global memory capacity in bytes.
    pub global_mem_bytes: usize,
    /// Peak memory bandwidth in bytes/second.
    pub peak_bandwidth: f64,
    /// Achievable streaming bandwidth in bytes/second (what a
    /// device-to-device memcpy reaches; the paper's codes move 264 GB/s).
    pub effective_bandwidth: f64,
    /// Concurrent threads needed to saturate the DRAM bandwidth; with
    /// fewer threads in flight the achieved bandwidth scales down
    /// proportionally (classic memory-level-parallelism behaviour, and the
    /// reason every figure's throughput ramps with input size).
    pub threads_to_saturate_bw: usize,
    /// Fixed kernel launch overhead in seconds.
    pub launch_overhead: f64,
    /// Latency of one look-back hop (flag poll + carry read) in seconds.
    pub hop_latency: f64,
    /// Baseline CUDA context allocation, in bytes. The paper's Table 2
    /// shows even the memcpy program allocates 109.5 MB beyond its buffers.
    pub context_overhead_bytes: u64,
}

impl DeviceConfig {
    /// The paper's GeForce GTX Titan X (Maxwell) with the measured
    /// calibration constants used throughout the reproduction.
    pub fn titan_x() -> Self {
        DeviceConfig {
            name: "GeForce GTX Titan X (Maxwell)",
            sms: 24,
            cores_per_sm: 128, // 3072 processing elements total
            clock_ghz: 1.1,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_resident_threads: 49_152,
            shared_mem_per_block: 48 * 1024,
            registers_per_sm: 65_536,
            l2_bytes: 2 * 1024 * 1024,
            l2_line_bytes: 32,
            global_mem_bytes: 12 * 1024 * 1024 * 1024,
            peak_bandwidth: 336.0e9,
            effective_bandwidth: 264.0e9,
            threads_to_saturate_bw: 8192,
            launch_overhead: 6.0e-6,
            hop_latency: 0.6e-6,
            context_overhead_bytes: (109.5 * 1024.0 * 1024.0) as u64,
        }
    }

    /// A GeForce GTX 1080 (Pascal) — a later-generation device the paper's
    /// approach explicitly targets ("it works on the several most recent
    /// GPU generations"). Used by the sensitivity study to check that the
    /// modelled conclusions are not Titan-X-specific.
    pub fn gtx_1080() -> Self {
        DeviceConfig {
            name: "GeForce GTX 1080 (Pascal)",
            sms: 20,
            cores_per_sm: 128,
            clock_ghz: 1.6,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_resident_threads: 40_960,
            shared_mem_per_block: 48 * 1024,
            registers_per_sm: 65_536,
            l2_bytes: 2 * 1024 * 1024,
            l2_line_bytes: 32,
            global_mem_bytes: 8 * 1024 * 1024 * 1024,
            peak_bandwidth: 320.0e9,
            effective_bandwidth: 250.0e9,
            threads_to_saturate_bw: 8192,
            launch_overhead: 5.0e-6,
            hop_latency: 0.5e-6,
            context_overhead_bytes: (110.0 * 1024.0 * 1024.0) as u64,
        }
    }

    /// Whether `bytes` of buffers fit alongside the context overhead.
    pub fn fits(&self, bytes: u64) -> bool {
        self.context_overhead_bytes + bytes <= self.global_mem_bytes as u64
    }

    /// The largest element count whose buffers of `bytes_per_element`
    /// bytes fit on this device.
    pub fn max_elements(&self, bytes_per_element: u64) -> usize {
        ((self.global_mem_bytes as u64 - self.context_overhead_bytes) / bytes_per_element) as usize
    }

    /// Total scalar cores.
    pub fn total_cores(&self) -> usize {
        self.sms * self.cores_per_sm
    }

    /// Scalar operation throughput in ops/second (one op per core per
    /// cycle; fused multiply-add counts as one).
    pub fn ops_per_second(&self) -> f64 {
        self.total_cores() as f64 * self.clock_ghz * 1e9
    }

    /// How many thread blocks of `threads` threads can be resident at once
    /// (the paper's `T`), limited by thread contexts and SM count with the
    /// given per-thread register demand.
    pub fn resident_blocks(&self, threads_per_block: usize, registers_per_thread: usize) -> usize {
        assert!(threads_per_block > 0 && threads_per_block <= self.max_threads_per_block);
        let by_contexts = self.max_resident_threads / threads_per_block;
        let regs_per_block = threads_per_block * registers_per_thread.max(1);
        let blocks_per_sm_by_regs = (self.registers_per_sm / regs_per_block).max(1);
        let by_registers = blocks_per_sm_by_regs * self.sms;
        by_contexts.min(by_registers)
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::titan_x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_x_matches_paper_parameters() {
        let d = DeviceConfig::titan_x();
        assert_eq!(d.total_cores(), 3072);
        assert_eq!(d.sms, 24);
        assert_eq!(d.l2_bytes, 2 * 1024 * 1024);
        assert!((d.peak_bandwidth - 336.0e9).abs() < 1.0);
        assert_eq!(d.max_resident_threads, 49_152);
    }

    #[test]
    fn ops_per_second_is_cores_times_clock() {
        let d = DeviceConfig::titan_x();
        assert!((d.ops_per_second() - 3072.0 * 1.1e9).abs() < 1.0);
    }

    #[test]
    fn resident_blocks_limited_by_contexts() {
        let d = DeviceConfig::titan_x();
        // 1024-thread blocks, 32 registers/thread: registers allow 2 blocks
        // per SM (65536 / 32768), contexts allow 48 total.
        assert_eq!(d.resident_blocks(1024, 32), 48);
        // 64 registers/thread: 1 block per SM by registers -> 24.
        assert_eq!(d.resident_blocks(1024, 64), 24);
    }

    #[test]
    #[should_panic]
    fn oversized_block_rejected() {
        DeviceConfig::titan_x().resident_blocks(2048, 32);
    }
}
