//! Global-memory model: allocation ledger and traffic accounting.
//!
//! Executors allocate named buffers (input, output, carries, flags, …) and
//! declare their read/write streams against them. The model assigns each
//! buffer a contiguous address range, feeds every access through the L2
//! cache model, and accumulates [`Counters`]. Peak allocation (plus the
//! fixed CUDA-context overhead) reproduces the paper's Table 2; L2 read
//! misses reproduce Table 3.

use crate::cache::Cache;
use crate::counters::Counters;
use crate::device::DeviceConfig;

/// Handle to an allocated buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(usize);

#[derive(Debug, Clone)]
struct Allocation {
    label: String,
    base: u64,
    bytes: u64,
    live: bool,
}

/// The device's global memory: allocations + traffic + cache.
#[derive(Debug)]
pub struct GlobalMemory {
    config: DeviceConfig,
    allocations: Vec<Allocation>,
    next_base: u64,
    live_bytes: u64,
    peak_bytes: u64,
    cache: Cache,
    counters: Counters,
}

impl GlobalMemory {
    /// Creates an empty memory for `config`, with the context overhead
    /// already counted as allocated (as NVML would report).
    pub fn new(config: DeviceConfig) -> Self {
        let overhead = config.context_overhead_bytes;
        let cache = Cache::l2_for(&config);
        GlobalMemory {
            config,
            allocations: Vec::new(),
            next_base: 0,
            live_bytes: overhead,
            peak_bytes: overhead,
            cache,
            counters: Counters::new(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Allocates `bytes` under a diagnostic `label`.
    ///
    /// # Panics
    ///
    /// Panics if the allocation would exceed the device's global memory —
    /// mirroring a CUDA out-of-memory failure, which is itself a paper
    /// observation (Scan cannot run 2^30-element third-order inputs).
    pub fn alloc(&mut self, bytes: u64, label: &str) -> BufferId {
        assert!(
            self.live_bytes + bytes <= self.config.global_mem_bytes as u64,
            "out of device memory: {} live + {} requested ({label}) > {} capacity",
            self.live_bytes,
            bytes,
            self.config.global_mem_bytes
        );
        let id = BufferId(self.allocations.len());
        self.allocations.push(Allocation {
            label: label.to_owned(),
            base: self.next_base,
            bytes,
            live: true,
        });
        // Buffers never overlap; leave a line-aligned gap.
        let line = self.config.l2_line_bytes as u64;
        self.next_base += bytes.div_ceil(line) * line;
        self.live_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        id
    }

    /// Checks whether `bytes` more can be allocated without failing.
    pub fn can_alloc(&self, bytes: u64) -> bool {
        self.live_bytes + bytes <= self.config.global_mem_bytes as u64
    }

    /// Frees a buffer (allocation ledger only; addresses are not reused).
    ///
    /// # Panics
    ///
    /// Panics on double free.
    pub fn free(&mut self, id: BufferId) {
        let a = &mut self.allocations[id.0];
        assert!(a.live, "double free of buffer `{}`", a.label);
        a.live = false;
        self.live_bytes -= a.bytes;
    }

    /// Bytes currently allocated, including the context overhead.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Peak bytes ever allocated, including the context overhead — the
    /// quantity the paper's Table 2 reports via NVML.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Labels and sizes of live allocations (diagnostics).
    pub fn live_allocations(&self) -> Vec<(&str, u64)> {
        self.allocations
            .iter()
            .filter(|a| a.live)
            .map(|a| (a.label.as_str(), a.bytes))
            .collect()
    }

    /// Reads `len` bytes at byte `offset` within buffer `id`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access or a freed buffer.
    pub fn read(&mut self, id: BufferId, offset: u64, len: u64) {
        let (base, _) = self.bounds_check(id, offset, len);
        self.counters.global_read_bytes += len;
        self.cache.read(base + offset, len);
        self.counters.l2_read_miss_bytes = self.cache.read_miss_bytes();
    }

    /// Writes `len` bytes at byte `offset` within buffer `id`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access or a freed buffer.
    pub fn write(&mut self, id: BufferId, offset: u64, len: u64) {
        let (base, _) = self.bounds_check(id, offset, len);
        self.counters.global_write_bytes += len;
        self.cache.write(base + offset, len);
    }

    /// Records an atomic read-modify-write (counter claims, flag updates).
    pub fn atomic(&mut self, id: BufferId, offset: u64, len: u64) {
        let (base, _) = self.bounds_check(id, offset, len);
        self.counters.atomics += 1;
        self.cache.write(base + offset, len);
    }

    /// Records a memory fence.
    pub fn fence(&mut self) {
        self.counters.fences += 1;
    }

    /// Mutable access to the counters (for fabric-level events: shuffles,
    /// shared-memory accesses, flops).
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// The accumulated counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The cache model (inspection).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    fn bounds_check(&self, id: BufferId, offset: u64, len: u64) -> (u64, u64) {
        let a = &self.allocations[id.0];
        assert!(a.live, "access to freed buffer `{}`", a.label);
        assert!(
            offset + len <= a.bytes,
            "out-of-bounds access to `{}`: offset {} + len {} > {} bytes",
            a.label,
            offset,
            len,
            a.bytes
        );
        (a.base, a.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> GlobalMemory {
        GlobalMemory::new(DeviceConfig::titan_x())
    }

    #[test]
    fn context_overhead_present_from_start() {
        let m = mem();
        let expect = (109.5 * 1024.0 * 1024.0) as u64;
        assert_eq!(m.live_bytes(), expect);
        assert_eq!(m.peak_bytes(), expect);
    }

    #[test]
    fn alloc_free_tracks_peak() {
        let mut m = mem();
        let base = m.live_bytes();
        let a = m.alloc(1000, "a");
        let b = m.alloc(2000, "b");
        assert_eq!(m.live_bytes(), base + 3000);
        m.free(a);
        assert_eq!(m.live_bytes(), base + 2000);
        let _c = m.alloc(500, "c");
        assert_eq!(m.peak_bytes(), base + 3000);
        m.free(b);
        assert_eq!(m.live_allocations().len(), 1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut m = mem();
        let a = m.alloc(10, "a");
        m.free(a);
        m.free(a);
    }

    #[test]
    #[should_panic(expected = "out of device memory")]
    fn oom_panics() {
        let mut m = mem();
        m.alloc(13 * 1024 * 1024 * 1024, "huge");
    }

    #[test]
    fn can_alloc_predicts_oom() {
        let m = mem();
        assert!(m.can_alloc(1024));
        assert!(!m.can_alloc(13 * 1024 * 1024 * 1024));
    }

    #[test]
    fn traffic_counted_and_cache_fed() {
        let mut m = mem();
        let a = m.alloc(1 << 20, "data");
        m.read(a, 0, 1 << 20);
        assert_eq!(m.counters().global_read_bytes, 1 << 20);
        // Cold streaming read: every 32 B line misses.
        assert_eq!(m.counters().l2_read_miss_bytes, 1 << 20);
        // Second pass over 1 MB fits in the 2 MB L2: all hits.
        m.read(a, 0, 1 << 20);
        assert_eq!(m.counters().global_read_bytes, 2 << 20);
        assert_eq!(m.counters().l2_read_miss_bytes, 1 << 20);
    }

    #[test]
    fn large_buffer_second_pass_misses_again() {
        let mut m = mem();
        let a = m.alloc(8 << 20, "big"); // 4× the L2
        m.read(a, 0, 8 << 20);
        m.read(a, 0, 8 << 20);
        assert_eq!(m.counters().l2_read_miss_bytes, 16 << 20);
    }

    #[test]
    #[should_panic(expected = "out-of-bounds")]
    fn oob_read_panics() {
        let mut m = mem();
        let a = m.alloc(100, "a");
        m.read(a, 90, 20);
    }

    #[test]
    fn buffers_do_not_alias_in_the_cache() {
        let mut m = mem();
        let a = m.alloc(64, "a");
        let b = m.alloc(64, "b");
        m.read(a, 0, 64);
        m.read(b, 0, 64);
        // 4 distinct lines -> 4 misses; aliasing would show fewer.
        assert_eq!(m.cache().read_misses(), 4);
    }

    #[test]
    fn atomics_and_fences_counted() {
        let mut m = mem();
        let a = m.alloc(64, "flags");
        m.atomic(a, 0, 4);
        m.fence();
        assert_eq!(m.counters().atomics, 1);
        assert_eq!(m.counters().fences, 1);
    }
}
