//! Warp- and block-level execution fabric.
//!
//! These primitives execute the PLR kernel's Phase 1 *functionally* (the
//! data really is transformed, and tests validate it against the serial
//! reference) while accounting every modelled hardware event: warp
//! shuffles, shared-memory accesses, global factor loads, and arithmetic.
//!
//! The hierarchy mirrors the paper's Section 3 kernel structure:
//!
//! 1. each thread serially solves its `x` consecutive values;
//! 2. doubling iterations *within* a warp exchange carries with shuffle
//!    instructions (chunk sizes `x … 32x`);
//! 3. doubling iterations *across* warps exchange carries through shared
//!    memory (chunk sizes `32x … 1024x = m`).

use crate::memory::{BufferId, GlobalMemory};
use plr_core::analysis::{FactorPattern, TableAnalysis};
use plr_core::element::Element;
use plr_core::nacci::CorrectionTable;
use plr_core::serial;

/// How the correction factors of one carry list are accessed at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactorListSpec {
    /// `true` when the list needs no memory accesses at all — the factors
    /// were folded into the code (constant, zero/one conditional adds, or a
    /// suppressed shifted duplicate).
    pub inline: bool,
    /// Number of leading entries served from shared memory (PLR buffers up
    /// to the first 1024 factors of each list; 0 disables buffering).
    pub shared_limit: usize,
    /// Number of leading nonzero entries; corrections at indices `>=
    /// active_len` are skipped entirely (decayed stable-filter factors).
    pub active_len: usize,
}

/// Access specification for a whole correction table.
#[derive(Debug, Clone)]
pub struct FactorAccess {
    /// One spec per carry list.
    pub lists: Vec<FactorListSpec>,
    /// Backing global buffer for non-inline lists (concatenated lists,
    /// list-major), if any list ever reads from global memory.
    pub buffer: Option<BufferId>,
    /// Bytes per factor element.
    pub element_bytes: u64,
    /// Table length `m` (entries per list in the global buffer).
    pub table_len: usize,
}

impl FactorAccess {
    /// The unoptimized access pattern the paper's Figure 10 compares
    /// against: every factor is loaded from global memory, no special code.
    pub fn unoptimized(k: usize, table_len: usize, element_bytes: u64, buffer: BufferId) -> Self {
        FactorAccess {
            lists: vec![
                FactorListSpec {
                    inline: false,
                    shared_limit: 0,
                    active_len: table_len
                };
                k
            ],
            buffer: Some(buffer),
            element_bytes,
            table_len,
        }
    }

    /// Derives the optimized access pattern from a factor-table analysis,
    /// buffering up to `shared_budget` leading entries of each non-inline
    /// list in shared memory (PLR uses 1024).
    pub fn from_analysis<T: Element>(
        analysis: &TableAnalysis<T>,
        table_len: usize,
        element_bytes: u64,
        shared_budget: usize,
        buffer: Option<BufferId>,
    ) -> Self {
        let lists = analysis
            .patterns
            .iter()
            .map(|p| match p {
                FactorPattern::AllZero => FactorListSpec {
                    inline: true,
                    shared_limit: 0,
                    active_len: 0,
                },
                FactorPattern::Constant(_) | FactorPattern::ZeroOne(_) => FactorListSpec {
                    inline: true,
                    shared_limit: 0,
                    active_len: table_len,
                },
                FactorPattern::Periodic { period } => FactorListSpec {
                    // One period lives comfortably in shared memory.
                    inline: false,
                    shared_limit: (*period).max(1),
                    active_len: table_len,
                },
                FactorPattern::DecaysAfter { decay_len } => FactorListSpec {
                    inline: false,
                    shared_limit: shared_budget.min(*decay_len),
                    active_len: *decay_len,
                },
                FactorPattern::Dense => FactorListSpec {
                    inline: false,
                    shared_limit: shared_budget,
                    active_len: table_len,
                },
            })
            .collect();
        FactorAccess {
            lists,
            buffer,
            element_bytes,
            table_len,
        }
    }

    /// Accounts one factor load of list `r`, entry `i` (periodic lists wrap
    /// into their stored period).
    fn load(&self, r: usize, i: usize, mem: &mut GlobalMemory) {
        let spec = self.lists[r];
        if spec.inline {
            return;
        }
        let idx = if spec.shared_limit > 0 && i >= spec.shared_limit && self.buffer.is_none() {
            // Periodic storage: wrap (no global buffer to read).
            i % spec.shared_limit
        } else {
            i
        };
        if idx < spec.shared_limit {
            mem.counters_mut().shared_accesses += 1;
        } else if let Some(buf) = self.buffer {
            let offset = (r * self.table_len + idx) as u64 * self.element_bytes;
            mem.read(buf, offset, self.element_bytes);
        } else {
            // No global buffer: modelled as shared anyway.
            mem.counters_mut().shared_accesses += 1;
        }
    }
}

/// Carry-exchange medium for a doubling iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exchange {
    /// Warp shuffle instructions (chunk sizes below `32x`).
    Shuffle,
    /// Shared memory (chunk sizes from `32x` to `m`).
    SharedMemory,
}

/// Each thread serially solves its `x` consecutive values (local chunks of
/// size `x`), counting `k` fused multiply-adds per element.
pub fn thread_local_solve<T: Element>(
    feedback: &[T],
    data: &mut [T],
    x: usize,
    mem: &mut GlobalMemory,
) {
    assert!(x >= 1, "each thread must own at least one value");
    let k = feedback.len() as u64;
    for chunk in data.chunks_mut(x) {
        serial::recursive_in_place(feedback, chunk);
        // Element j of a chunk uses min(j, k) carries.
        let len = chunk.len() as u64;
        mem.counters_mut().flops += (0..len).map(|j| j.min(k)).sum::<u64>();
    }
}

/// One doubling iteration merging adjacent `chunk`-sized chunks, counting
/// events per the exchange medium and factor-access spec.
///
/// Functionally identical to [`plr_core::phase1::merge_step`] except that
/// corrections beyond a list's `active_len` are skipped (sound when the
/// skipped factors are zero, which the flush-to-zero table generation
/// guarantees).
pub fn merge_step<T: Element>(
    table: &CorrectionTable<T>,
    data: &mut [T],
    chunk: usize,
    exchange: Exchange,
    access: &FactorAccess,
    mem: &mut GlobalMemory,
) {
    assert!(chunk > 0 && chunk <= table.len());
    let k = table.order();
    let pair = 2 * chunk;
    let n = data.len();
    let mut pair_start = 0;
    while pair_start < n {
        let second_start = pair_start + chunk;
        if second_start >= n {
            break;
        }
        let second_end = (pair_start + pair).min(n);
        let (first, second) = data[pair_start..second_end].split_at_mut(chunk);
        for r in 0..k.min(chunk) {
            let carry = first[chunk - 1 - r];
            let active = access.lists[r].active_len.min(second.len());
            // Each correcting element fetches the carry through the
            // exchange medium once.
            match exchange {
                Exchange::Shuffle => mem.counters_mut().shuffles += active as u64,
                Exchange::SharedMemory => mem.counters_mut().shared_accesses += 2 * active as u64,
            }
            for (i, v) in second.iter_mut().enumerate().take(active) {
                access.load(r, i, mem);
                *v = v.add(table.list(r)[i].mul(carry));
                mem.counters_mut().flops += 1;
            }
        }
        pair_start += pair;
    }
}

/// Phase 2 correction of a whole chunk with the predecessor's global
/// carries (held in registers, so only factor loads and arithmetic are
/// counted).
///
/// Corrections beyond a list's `active_len` are skipped, mirroring the
/// decay optimization; this is sound when the skipped factors are zero.
pub fn correct_with_carries<T: Element>(
    table: &CorrectionTable<T>,
    chunk: &mut [T],
    carries: &[T],
    access: &FactorAccess,
    mem: &mut GlobalMemory,
) {
    assert!(chunk.len() <= table.len());
    for (r, &carry) in carries.iter().enumerate().take(table.order()) {
        let active = access.lists[r].active_len.min(chunk.len());
        for (i, v) in chunk.iter_mut().enumerate().take(active) {
            access.load(r, i, mem);
            *v = v.add(table.list(r)[i].mul(carry));
            mem.counters_mut().flops += 1;
        }
    }
}

/// Runs the full block-level Phase 1 over one `m`-sized chunk of data:
/// per-thread serial solves of `x` values, shuffle doubling to `warp_size·x`,
/// shared-memory doubling to the chunk size.
///
/// `data` is the block's chunk (the final chunk of an input may be ragged).
///
/// # Panics
///
/// Panics if `x` is zero or `data` exceeds the correction table length.
pub fn block_local_solve<T: Element>(
    feedback: &[T],
    table: &CorrectionTable<T>,
    data: &mut [T],
    x: usize,
    warp_size: usize,
    access: &FactorAccess,
    mem: &mut GlobalMemory,
) {
    assert!(
        data.len() <= table.len(),
        "chunk larger than the correction table"
    );
    thread_local_solve(feedback, data, x, mem);
    let mut chunk = x;
    while chunk < data.len() {
        let exchange = if chunk < warp_size * x {
            Exchange::Shuffle
        } else {
            Exchange::SharedMemory
        };
        merge_step(table, data, chunk, exchange, access, mem);
        chunk *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use plr_core::analysis;

    fn mem() -> GlobalMemory {
        GlobalMemory::new(DeviceConfig::titan_x())
    }

    fn inline_access(k: usize, m: usize) -> FactorAccess {
        FactorAccess {
            lists: vec![
                FactorListSpec {
                    inline: true,
                    shared_limit: 0,
                    active_len: m
                };
                k
            ],
            buffer: None,
            element_bytes: 4,
            table_len: m,
        }
    }

    /// Expected local solutions: serial solve per m-chunk.
    fn expected_local<T: Element>(feedback: &[T], input: &[T], m: usize) -> Vec<T> {
        let mut out = input.to_vec();
        for c in out.chunks_mut(m) {
            serial::recursive_in_place(feedback, c);
        }
        out
    }

    #[test]
    fn block_local_solve_matches_serial_per_chunk() {
        let fb = [2i32, -1];
        let m = 64; // x = 2, "warp" of 4 lanes -> shuffle until chunk 8
        let table = CorrectionTable::generate(&fb, m);
        let access = inline_access(2, m);
        let input: Vec<i32> = (0..200).map(|i| ((i * 13) % 17) - 8).collect();
        let mut data = input.clone();
        let mut mem = mem();
        for chunk in data.chunks_mut(m) {
            block_local_solve(&fb, &table, chunk, 2, 4, &access, &mut mem);
        }
        assert_eq!(data, expected_local(&fb, &input, m));
        let c = mem.counters();
        assert!(c.shuffles > 0, "warp-level iterations should shuffle");
        assert!(
            c.shared_accesses > 0,
            "cross-warp iterations should use shared memory"
        );
        assert!(c.flops > 0);
    }

    #[test]
    fn non_power_of_two_x_still_correct() {
        // The paper's x can be any integer 1..=11; doubling goes x, 2x, …
        let fb = [1i64, 1];
        let m = 96; // x = 3, doubling 3,6,12,24,48
        let table = CorrectionTable::generate(&fb, m);
        let access = inline_access(2, m);
        let input: Vec<i64> = (0..96).map(|i| (i % 7) as i64 - 3).collect();
        let mut data = input.clone();
        let mut mem = mem();
        block_local_solve(&fb, &table, &mut data, 3, 4, &access, &mut mem);
        assert_eq!(data, expected_local(&fb, &input, m));
    }

    #[test]
    fn ragged_final_chunk_is_solved() {
        let fb = [1i32];
        let m = 32;
        let table = CorrectionTable::generate(&fb, m);
        let access = inline_access(1, m);
        let input: Vec<i32> = (1..=45).collect();
        let mut data = input.clone();
        let mut mem = mem();
        for chunk in data.chunks_mut(m) {
            block_local_solve(&fb, &table, chunk, 1, 4, &access, &mut mem);
        }
        assert_eq!(data, expected_local(&fb, &input, m));
    }

    #[test]
    fn factor_loads_split_between_shared_and_global() {
        let fb = [2i32, -1];
        let m = 16;
        let table = CorrectionTable::generate(&fb, m);
        let mut mem = mem();
        let buf = mem.alloc((2 * m * 4) as u64, "factors");
        // Buffer only the first 4 entries of each list in shared memory.
        let access = FactorAccess {
            lists: vec![
                FactorListSpec {
                    inline: false,
                    shared_limit: 4,
                    active_len: m
                };
                2
            ],
            buffer: Some(buf),
            element_bytes: 4,
            table_len: m,
        };
        let input: Vec<i32> = (0..16).collect();
        let mut data = input.clone();
        block_local_solve(&fb, &table, &mut data, 1, 4, &access, &mut mem);
        assert_eq!(data, expected_local(&fb, &input, m));
        let c = mem.counters();
        // Some loads hit shared memory, some global.
        assert!(c.shared_accesses > 0);
        assert!(c.global_read_bytes > 0);
    }

    #[test]
    fn unoptimized_access_reads_everything_from_global() {
        let fb = [1i32];
        let m = 8;
        let table = CorrectionTable::generate(&fb, m);
        let mut mem = mem();
        let buf = mem.alloc((m * 4) as u64, "factors");
        let access = FactorAccess::unoptimized(1, m, 4, buf);
        let input = vec![1i32; 8];
        let mut data = input.clone();
        block_local_solve(&fb, &table, &mut data, 1, 4, &access, &mut mem);
        assert_eq!(data, expected_local(&fb, &input, m));
        // Doubling 1->8 corrects 4+4+4=... every factor load goes global:
        // chunk=1: 4 corrections, chunk=2: 4, chunk=4: 4 => 12 loads.
        assert_eq!(mem.counters().global_read_bytes, 12 * 4);
    }

    #[test]
    fn decayed_lists_skip_work() {
        // A stable filter whose factors vanish quickly.
        let fb = [0.5f32];
        let m = 256;
        let flushed = CorrectionTable::generate_with(&fb, m, true);
        let a = analysis::analyze_table(&flushed);
        let decay = match a.patterns[0] {
            analysis::FactorPattern::DecaysAfter { decay_len } => decay_len,
            ref p => panic!("expected decay, got {p:?}"),
        };
        let access = FactorAccess::from_analysis(&a, m, 4, 1024, None);
        assert_eq!(access.lists[0].active_len, decay);

        let input: Vec<f32> = (0..256).map(|i| ((i % 5) as f32) - 2.0).collect();
        let mut data = input.clone();
        let mut mem_opt = mem();
        block_local_solve(&fb, &flushed, &mut data, 1, 32, &access, &mut mem_opt);

        let expect = expected_local(&fb, &input, m);
        for (g, e) in data.iter().zip(&expect) {
            assert!(g.approx_eq(*e, 1e-3), "{g} vs {e}");
        }

        // The skip must reduce arithmetic vs the unoptimized run.
        let mut data2 = input.clone();
        let mut mem_unopt = mem();
        let buf = mem_unopt.alloc((m * 4) as u64, "factors");
        let unopt = FactorAccess::unoptimized(1, m, 4, buf);
        let table_raw = CorrectionTable::generate(&fb, m);
        block_local_solve(&fb, &table_raw, &mut data2, 1, 32, &unopt, &mut mem_unopt);
        assert!(mem_opt.counters().flops < mem_unopt.counters().flops);
    }

    #[test]
    fn from_analysis_marks_constant_lists_inline() {
        let table = CorrectionTable::generate(&[1i64], 32);
        let a = analysis::analyze_table(&table);
        let access = FactorAccess::from_analysis(&a, 32, 8, 1024, None);
        assert!(access.lists[0].inline);
    }
}
