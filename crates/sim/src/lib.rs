//! # plr-sim
//!
//! A hierarchical GPU-like machine model standing in for the paper's
//! GeForce GTX Titan X testbed.
//!
//! Real kernels on a real GPU are replaced by *functional execution with
//! event accounting*: the recurrence algorithms genuinely transform data
//! (so outputs are validated against the serial reference, exactly as the
//! paper validates its CUDA outputs), while every modelled hardware event —
//! global-memory traffic, L2 cache line misses, shared-memory accesses,
//! warp shuffles, arithmetic, atomics — is counted. An analytic
//! [`timing::CostModel`] turns the counts into time/throughput estimates
//! calibrated to the Titan X's published parameters, reproducing the
//! *shape* of the paper's figures; the allocation ledger and cache model
//! reproduce Tables 2 and 3 directly.
//!
//! Layers, bottom-up:
//!
//! * [`device`] — hardware parameters ([`device::DeviceConfig::titan_x`]);
//! * [`counters`] — event counts;
//! * [`cache`] — set-associative LRU L2 model;
//! * [`memory`] — allocation ledger + traffic accounting + cache feed;
//! * [`fabric`] — warp/block Phase 1 primitives with per-event accounting;
//! * [`timing`] — the analytic cost model.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod counters;
pub mod device;
pub mod fabric;
pub mod memory;
pub mod report;
pub mod timing;
pub mod warp;

pub use counters::Counters;
pub use device::DeviceConfig;
pub use memory::{BufferId, GlobalMemory};
pub use report::RunReport;
pub use timing::{CostModel, TimeEstimate, Workload};
