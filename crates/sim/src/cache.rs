//! A set-associative LRU cache model for the device's L2.
//!
//! The paper reports "L2-cache read misses … multiplied by the block size
//! of 32 bytes" (Table 3). This model replays the executors' global-memory
//! access streams at line granularity and counts read misses the same way.

/// Set-associative write-allocate LRU cache.
#[derive(Debug, Clone)]
pub struct Cache {
    line_bytes: usize,
    sets: usize,
    ways: usize,
    /// `tags[set][way]`: tag plus a valid bit packed as Option.
    tags: Vec<Vec<Option<u64>>>,
    /// LRU ordering per set: `lru[set][i]` is the way index, most recently
    /// used last.
    lru: Vec<Vec<u8>>,
    read_misses: u64,
    read_hits: u64,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with `ways`-way associativity
    /// and `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics unless all parameters are positive powers of two and the
    /// capacity is divisible by `ways × line_bytes`.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(line_bytes.is_power_of_two() && line_bytes > 0);
        assert!(ways > 0 && ways <= 255);
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines.is_multiple_of(ways),
            "capacity must divide evenly into sets"
        );
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            line_bytes,
            sets,
            ways,
            tags: vec![vec![None; ways]; sets],
            lru: vec![(0..ways as u8).collect(); sets],
            read_misses: 0,
            read_hits: 0,
        }
    }

    /// The device L2 for a [`DeviceConfig`]: 16-way, config line size.
    ///
    /// [`DeviceConfig`]: crate::device::DeviceConfig
    pub fn l2_for(config: &crate::device::DeviceConfig) -> Self {
        Cache::new(config.l2_bytes, 16, config.l2_line_bytes)
    }

    /// The line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// The associativity (ways per set).
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Read misses observed so far.
    pub fn read_misses(&self) -> u64 {
        self.read_misses
    }

    /// Read misses in bytes (misses × line size), the paper's Table 3 unit.
    pub fn read_miss_bytes(&self) -> u64 {
        self.read_misses * self.line_bytes as u64
    }

    /// Read hits observed so far.
    pub fn read_hits(&self) -> u64 {
        self.read_hits
    }

    /// Accesses the byte range `[addr, addr + len)` as reads, line by line.
    pub fn read(&mut self, addr: u64, len: u64) {
        self.touch_range(addr, len, true);
    }

    /// Accesses the byte range as writes (write-allocate, no miss counted —
    /// the paper reports *read* misses).
    pub fn write(&mut self, addr: u64, len: u64) {
        self.touch_range(addr, len, false);
    }

    fn touch_range(&mut self, addr: u64, len: u64, is_read: bool) {
        if len == 0 {
            return;
        }
        let first = addr / self.line_bytes as u64;
        let last = (addr + len - 1) / self.line_bytes as u64;
        for line in first..=last {
            self.touch_line(line, is_read);
        }
    }

    fn touch_line(&mut self, line: u64, is_read: bool) {
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let ways = &mut self.tags[set];
        let order = &mut self.lru[set];
        if let Some(way) = ways.iter().position(|t| *t == Some(tag)) {
            if is_read {
                self.read_hits += 1;
            }
            let pos = order
                .iter()
                .position(|&w| w == way as u8)
                .expect("way tracked in LRU");
            let w = order.remove(pos);
            order.push(w);
        } else {
            if is_read {
                self.read_misses += 1;
            }
            let victim = order.remove(0);
            ways[victim as usize] = Some(tag);
            order.push(victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 8 lines of 32 B, 2-way -> 4 sets.
        Cache::new(256, 2, 32)
    }

    #[test]
    fn cold_misses_counted_per_line() {
        let mut c = tiny();
        c.read(0, 128); // 4 lines
        assert_eq!(c.read_misses(), 4);
        assert_eq!(c.read_miss_bytes(), 128);
    }

    #[test]
    fn repeated_read_hits() {
        let mut c = tiny();
        c.read(0, 32);
        c.read(0, 32);
        assert_eq!(c.read_misses(), 1);
        assert_eq!(c.read_hits(), 1);
    }

    #[test]
    fn unaligned_range_touches_both_lines() {
        let mut c = tiny();
        c.read(30, 4); // straddles lines 0 and 1
        assert_eq!(c.read_misses(), 2);
    }

    #[test]
    fn writes_allocate_but_do_not_count_read_misses() {
        let mut c = tiny();
        c.write(0, 32);
        assert_eq!(c.read_misses(), 0);
        c.read(0, 32); // hits thanks to write-allocate
        assert_eq!(c.read_misses(), 0);
        assert_eq!(c.read_hits(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Lines mapping to set 0: line numbers 0, 4, 8 (4 sets).
        c.read(0, 1); // line 0
        c.read(4 * 32, 1); // line 4
        c.read(8 * 32, 1); // line 8 evicts line 0
        c.read(0, 1); // miss again
        assert_eq!(c.read_misses(), 4);
        // Line 4 was most recently used before line 8; after reading line 0
        // the set holds {8, 0}; line 4 now misses.
        c.read(4 * 32, 1);
        assert_eq!(c.read_misses(), 5);
    }

    #[test]
    fn streaming_larger_than_capacity_never_hits() {
        let mut c = tiny();
        for pass in 0..2 {
            c.read(0, 512); // 16 lines through an 8-line cache
            let _ = pass;
        }
        assert_eq!(c.read_misses(), 32);
        assert_eq!(c.read_hits(), 0);
    }

    #[test]
    fn working_set_within_capacity_hits_on_second_pass() {
        let mut c = tiny();
        c.read(0, 256);
        c.read(0, 256);
        assert_eq!(c.read_misses(), 8);
        assert_eq!(c.read_hits(), 8);
    }

    #[test]
    fn zero_length_access_is_noop() {
        let mut c = tiny();
        c.read(0, 0);
        assert_eq!(c.read_misses(), 0);
    }

    #[test]
    fn l2_for_titan_x() {
        let c = Cache::l2_for(&crate::device::DeviceConfig::titan_x());
        assert_eq!(c.line_bytes(), 32);
    }
}
