//! A lockstep SIMT warp: the lowest level of the hierarchy.
//!
//! The paper's Section 3 kernel brings chunks up to the warp size with
//! shuffle instructions — lane-to-lane register exchanges that need no
//! memory or synchronization. This module models a warp *faithfully*: 32
//! lanes advancing in lockstep, with the CUDA shuffle primitives
//! (`shfl_up`, `shfl_down`, `shfl_idx`) defined exactly as the hardware
//! defines them (out-of-range lanes receive their own value). The
//! recurrence merge built from these primitives is cross-checked against
//! the slice-level [`crate::fabric::merge_step`] and the serial reference.

use plr_core::element::Element;
use plr_core::nacci::CorrectionTable;

/// The hardware warp width.
pub const WARP_SIZE: usize = 32;

/// One warp's registers for a value: 32 lanes in lockstep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Warp<T>(pub [T; WARP_SIZE]);

impl<T: Element> Warp<T> {
    /// Broadcasts one value to every lane.
    pub fn splat(v: T) -> Self {
        Warp([v; WARP_SIZE])
    }

    /// Loads lanes from a slice (missing lanes get `fill`).
    pub fn load(values: &[T], fill: T) -> Self {
        let mut lanes = [fill; WARP_SIZE];
        for (l, &v) in lanes.iter_mut().zip(values) {
            *l = v;
        }
        Warp(lanes)
    }

    /// Stores the first `len` lanes into a slice.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32` or the destination is shorter than `len`.
    pub fn store(&self, out: &mut [T], len: usize) {
        assert!(len <= WARP_SIZE && out.len() >= len);
        out[..len].copy_from_slice(&self.0[..len]);
    }

    /// `__shfl_up_sync`: lane `i` receives lane `i - delta`'s value; lanes
    /// with `i < delta` keep their own (the hardware's out-of-range rule).
    pub fn shfl_up(&self, delta: usize) -> Self {
        let mut out = self.0;
        for i in (delta..WARP_SIZE).rev() {
            out[i] = self.0[i - delta];
        }
        Warp(out)
    }

    /// `__shfl_down_sync`: lane `i` receives lane `i + delta`'s value.
    pub fn shfl_down(&self, delta: usize) -> Self {
        let mut out = self.0;
        let keep = WARP_SIZE.saturating_sub(delta);
        out[..keep].copy_from_slice(&self.0[delta..delta + keep]);
        Warp(out)
    }

    /// `__shfl_sync` with a computed source lane per lane; out-of-range
    /// sources keep the lane's own value.
    pub fn shfl_idx(&self, src: impl Fn(usize) -> usize) -> Self {
        let mut out = self.0;
        for (i, o) in out.iter_mut().enumerate() {
            let s = src(i);
            if s < WARP_SIZE {
                *o = self.0[s];
            }
        }
        Warp(out)
    }

    /// Lane-wise map (every lane executes the same instruction).
    pub fn map(&self, f: impl Fn(usize, T) -> T) -> Self {
        let mut out = self.0;
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(i, *o);
        }
        Warp(out)
    }
}

/// The warp-level Phase 1: hierarchical doubling of one 32-element chunk
/// held across the lanes, built *only* from shuffles and lane-local
/// arithmetic (the paper's code section 4b). Returns the number of shuffle
/// instructions issued.
///
/// After the call, the warp holds the local recurrence solution of its 32
/// values.
pub fn warp_recurrence_merge<T: Element>(warp: &mut Warp<T>, table: &CorrectionTable<T>) -> u64 {
    assert!(
        table.len() >= WARP_SIZE / 2,
        "table must cover the widest merge"
    );
    let k = table.order();
    let mut shuffles = 0u64;
    let mut width = 1usize;
    while width < WARP_SIZE {
        for r in 0..k.min(width) {
            // Every lane fetches the carry: the last element of its pair's
            // first chunk sits at lane (i / 2w)·2w + w - 1 - r.
            let carry = warp.shfl_idx(|i| {
                let pair_base = i / (2 * width) * (2 * width);
                pair_base + width - 1 - r
            });
            shuffles += 1;
            let list = table.list(r);
            // Lanes in the second half of their pair apply the correction;
            // others execute the same instruction with a zero predicate
            // (SIMT divergence is masking, not branching).
            *warp = warp.map(|i, v| {
                let in_second = (i / width) % 2 == 1;
                if in_second {
                    let fi = i % width;
                    v.add(list[fi].mul(carry.0[i]))
                } else {
                    v
                }
            });
        }
        width *= 2;
    }
    shuffles
}

#[cfg(test)]
mod tests {
    use super::*;
    use plr_core::serial;

    #[test]
    fn shfl_up_matches_hardware_semantics() {
        let w = Warp::load(&(0..32).map(|i| i as i64).collect::<Vec<_>>(), 0);
        let up = w.shfl_up(1);
        assert_eq!(up.0[0], 0, "lane 0 keeps its own value");
        assert_eq!(up.0[1], 0);
        assert_eq!(up.0[31], 30);
        let up4 = w.shfl_up(4);
        assert_eq!(up4.0[3], 3, "below delta keeps own");
        assert_eq!(up4.0[4], 0);
        assert_eq!(up4.0[31], 27);
    }

    #[test]
    fn shfl_down_matches_hardware_semantics() {
        let w = Warp::load(&(0..32).map(|i| i as i64).collect::<Vec<_>>(), 0);
        let d = w.shfl_down(2);
        assert_eq!(d.0[0], 2);
        assert_eq!(d.0[29], 31);
        assert_eq!(d.0[30], 30, "beyond range keeps own");
        assert_eq!(d.0[31], 31);
    }

    #[test]
    fn warp_merge_solves_the_recurrence_for_every_order() {
        for fb in [
            &[1i64][..],
            &[1, 1][..],
            &[2, -1][..],
            &[3, -3, 1][..],
            &[0, 0, 1][..],
        ] {
            let table = CorrectionTable::generate(fb, 16);
            let values: Vec<i64> = (0..32).map(|i| ((i * 37) % 11) as i64 - 5).collect();
            let mut warp = Warp::load(&values, 0);
            warp_recurrence_merge(&mut warp, &table);
            let mut expect = values.clone();
            serial::recursive_in_place(fb, &mut expect);
            let mut got = vec![0i64; 32];
            warp.store(&mut got, 32);
            assert_eq!(got, expect, "feedback {fb:?}");
        }
    }

    #[test]
    fn shuffle_count_is_k_bounded_per_level() {
        // Levels 1,2,4,8,16 issue min(k, width) shuffles each.
        let table = CorrectionTable::generate(&[2i64, -1], 16);
        let mut warp = Warp::splat(1i64);
        let shuffles = warp_recurrence_merge(&mut warp, &table);
        // k=2: level 1 issues 1, levels 2..16 issue 2 -> 1 + 2*4 = 9.
        assert_eq!(shuffles, 9);
    }

    #[test]
    fn agrees_with_the_slice_level_fabric() {
        use crate::fabric::{self, FactorAccess, FactorListSpec};
        use crate::memory::GlobalMemory;
        let fb = [1i64, -2, 1];
        let table = CorrectionTable::generate(&fb, 16);
        let values: Vec<i64> = (0..32).map(|i| (i % 7) as i64 - 3).collect();

        let mut warp = Warp::load(&values, 0);
        warp_recurrence_merge(&mut warp, &table);

        let mut slice = values.clone();
        let access = FactorAccess {
            lists: vec![
                FactorListSpec {
                    inline: true,
                    shared_limit: 0,
                    active_len: 16
                };
                3
            ],
            buffer: None,
            element_bytes: 8,
            table_len: 16,
        };
        let mut mem = GlobalMemory::new(crate::device::DeviceConfig::titan_x());
        let mut chunk = 1;
        while chunk < 32 {
            fabric::merge_step(
                &table,
                &mut slice,
                chunk,
                fabric::Exchange::Shuffle,
                &access,
                &mut mem,
            );
            chunk *= 2;
        }
        let mut got = vec![0i64; 32];
        warp.store(&mut got, 32);
        assert_eq!(got, slice);
    }

    #[test]
    fn splat_and_map() {
        let w = Warp::splat(7i32).map(|i, v| v + i as i32);
        assert_eq!(w.0[0], 7);
        assert_eq!(w.0[31], 38);
    }
}
