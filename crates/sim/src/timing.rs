//! Analytic timing model.
//!
//! The paper's evaluation metric is throughput (words/second) as a function
//! of input size. On a bandwidth-bound device that is governed by a small
//! number of quantities, all of which the simulator counts or knows
//! structurally:
//!
//! * **memory time** — total global traffic over the achievable bandwidth;
//! * **compute time** — instructions per resident-block *round*; a kernel
//!   with fewer chunks than the device can hold is underutilized, which is
//!   what makes small inputs slow and produces the ramp in every figure;
//! * **exposed serial latency** — kernel launch plus the unhidden part of
//!   the carry chain (pipeline fill of the decoupled look-back).
//!
//! `time = launch + chain + max(mem_time, compute_time)`.

use crate::counters::Counters;
use crate::device::DeviceConfig;

/// Instruction-weight constants for the compute-time estimate.
///
/// Every counted event costs roughly one issued instruction; shared-memory
/// and shuffle traffic is a little cheaper than a global FMA pipeline stall
/// would suggest, atomics considerably more. These weights are calibration
/// constants, not physics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpWeights {
    /// Weight of one arithmetic op (FMA).
    pub flop: f64,
    /// Weight of one shuffle.
    pub shuffle: f64,
    /// Weight of one shared-memory access.
    pub shared: f64,
    /// Weight of one global load/store *instruction* (per 32-bit word of
    /// global traffic). Issue slots are consumed whether or not the access
    /// hits in the L2, which is why loading correction factors from global
    /// memory costs more than folding them into the code even though both
    /// end up L2-resident (the effect behind the paper's Figure 10).
    pub global_word: f64,
    /// Weight of one global atomic.
    pub atomic: f64,
}

impl Default for OpWeights {
    fn default() -> Self {
        OpWeights {
            flop: 1.0,
            shuffle: 1.0,
            shared: 1.0,
            global_word: 2.0,
            atomic: 30.0,
        }
    }
}

/// Structural inputs the counters alone cannot convey.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Number of elements processed (for throughput).
    pub elements: u64,
    /// Number of thread blocks launched (chunks).
    pub blocks: u64,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Registers per thread (limits residency).
    pub registers_per_thread: usize,
    /// Exposed serial look-back hops (pipeline fill; the steady-state chain
    /// is hidden behind the resident blocks' compute).
    pub exposed_hops: u64,
    /// Number of kernel launches (1 for the single-pass codes; Scan's
    /// multi-kernel passes launch several).
    pub launches: u64,
    /// Empirical derate on compute throughput in `(0, 1]`.
    ///
    /// The model counts instructions but cannot simulate issue-slot
    /// contention, load-store-unit pressure, or shared-memory bank
    /// conflicts. Executors whose inner loops are dominated by
    /// non-specializable memory-indexed factor loads (e.g. PLR on dense
    /// higher-order factor lists, SAM's multi-level shared-memory scans)
    /// declare a derate here, calibrated against the paper's measurements
    /// and documented per executor.
    pub compute_efficiency: f64,
    /// Empirical derate on achievable DRAM bandwidth in `(0, 1]`.
    ///
    /// Covers access-pattern effects (strided vector loads, pass-boundary
    /// stalls in multi-kernel codes) that line-granular traffic counting
    /// does not expose.
    pub bandwidth_efficiency: f64,
}

impl Workload {
    /// A single-launch workload with no derates; callers override fields.
    pub fn new(elements: u64, blocks: u64) -> Self {
        Workload {
            elements,
            blocks,
            threads_per_block: 1024,
            registers_per_thread: 32,
            exposed_hops: 0,
            launches: 1,
            compute_efficiency: 1.0,
            bandwidth_efficiency: 1.0,
        }
    }
}

/// The analytic cost model for a device.
#[derive(Debug, Clone)]
pub struct CostModel {
    config: DeviceConfig,
    weights: OpWeights,
}

/// A computed time estimate, decomposed for inspection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeEstimate {
    /// Memory-system time in seconds.
    pub memory_time: f64,
    /// Compute time in seconds.
    pub compute_time: f64,
    /// Exposed serial latency (launches + look-back fill) in seconds.
    pub serial_time: f64,
    /// Total modelled time in seconds.
    pub total: f64,
}

impl CostModel {
    /// A model for `config` with default instruction weights.
    pub fn new(config: DeviceConfig) -> Self {
        CostModel {
            config,
            weights: OpWeights::default(),
        }
    }

    /// Overrides the instruction weights.
    pub fn with_weights(mut self, weights: OpWeights) -> Self {
        self.weights = weights;
        self
    }

    /// The modelled device.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Estimates execution time from counters and workload structure.
    pub fn time(&self, counters: &Counters, workload: &Workload) -> TimeEstimate {
        let cfg = &self.config;
        // DRAM pressure: read *misses* (L2 hits don't reach the memory
        // controllers) plus write traffic (streaming stores write through).
        let dram_bytes = counters.l2_read_miss_bytes + counters.global_write_bytes;
        // Bandwidth requires memory-level parallelism: with fewer threads
        // in flight than the saturation point, achieved bandwidth scales
        // down proportionally.
        let resident_for_bw =
            cfg.resident_blocks(workload.threads_per_block, workload.registers_per_thread) as u64;
        let active_threads =
            workload.blocks.min(resident_for_bw) as f64 * workload.threads_per_block as f64;
        let bw_utilization =
            (active_threads / cfg.threads_to_saturate_bw as f64).clamp(f64::MIN_POSITIVE, 1.0);
        let memory_time = dram_bytes as f64
            / (cfg.effective_bandwidth
                * bw_utilization
                * workload.bandwidth_efficiency.clamp(f64::MIN_POSITIVE, 1.0));

        // Compute: instructions are spread over the resident blocks; the
        // device runs ceil(blocks / resident) sequential rounds, and within
        // a round each block has `cores_per_sm` lanes making progress
        // (blocks time-share an SM's cores, so a round's speed is the SM
        // throughput divided by blocks per SM — equivalently, total ops
        // over total cores once every SM is busy; underutilization appears
        // when blocks < resident).
        let w = &self.weights;
        let total_ops = counters.flops as f64 * w.flop
            + counters.shuffles as f64 * w.shuffle
            + counters.shared_accesses as f64 * w.shared
            + counters.global_traffic_bytes() as f64 / 4.0 * w.global_word
            + counters.atomics as f64 * w.atomic;
        let resident =
            cfg.resident_blocks(workload.threads_per_block, workload.registers_per_thread) as u64;
        let compute_time = if workload.blocks == 0 {
            0.0
        } else {
            let rounds = workload.blocks.div_ceil(resident).max(1) as f64;
            let ops_per_block = total_ops / workload.blocks as f64;
            // Ops available to one block per second: its SM share.
            let blocks_per_sm = (resident as f64 / cfg.sms as f64).max(1.0);
            let block_rate = cfg.cores_per_sm as f64 * cfg.clock_ghz * 1e9 / blocks_per_sm
                * workload.compute_efficiency.clamp(f64::MIN_POSITIVE, 1.0);
            rounds * ops_per_block / block_rate
        };

        let serial_time = workload.launches as f64 * cfg.launch_overhead
            + workload.exposed_hops as f64 * cfg.hop_latency;
        let total = serial_time + memory_time.max(compute_time);
        TimeEstimate {
            memory_time,
            compute_time,
            serial_time,
            total,
        }
    }

    /// Throughput in elements/second for a time estimate.
    pub fn throughput(&self, workload: &Workload, estimate: &TimeEstimate) -> f64 {
        workload.elements as f64 / estimate.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(DeviceConfig::titan_x())
    }

    fn streaming_counters(n_words: u64) -> Counters {
        Counters {
            global_read_bytes: n_words * 4,
            l2_read_miss_bytes: n_words * 4, // cold streaming reads
            global_write_bytes: n_words * 4,
            ..Counters::new()
        }
    }

    fn workload(n: u64, m: u64) -> Workload {
        Workload {
            elements: n,
            blocks: n.div_ceil(m),
            threads_per_block: 1024,
            registers_per_thread: 32,
            exposed_hops: 32,
            launches: 1,
            compute_efficiency: 1.0,
            bandwidth_efficiency: 1.0,
        }
    }

    #[test]
    fn large_streaming_workload_hits_bandwidth_roof() {
        let m = model();
        let n = 1u64 << 30;
        let w = workload(n, 9 * 1024);
        let est = m.time(&streaming_counters(n), &w);
        let tput = m.throughput(&w, &est);
        // 264 GB/s over 8 B/element = 33e9 elements/s; overheads shave a
        // little off.
        assert!(tput > 30.0e9, "throughput {tput:.3e}");
        assert!(tput <= 33.1e9, "throughput {tput:.3e}");
    }

    #[test]
    fn small_inputs_are_overhead_dominated() {
        let m = model();
        let n = 1u64 << 14;
        let w = workload(n, 9 * 1024);
        let est = m.time(&streaming_counters(n), &w);
        let tput = m.throughput(&w, &est);
        // Launch + fill latency keeps small inputs far from the roof.
        assert!(tput < 2.0e9, "throughput {tput:.3e}");
        assert!(est.serial_time > est.memory_time);
    }

    #[test]
    fn throughput_is_monotone_in_input_size() {
        let m = model();
        let mut last = 0.0;
        for log_n in 14..=30 {
            let n = 1u64 << log_n;
            let w = workload(n, 9 * 1024);
            let est = m.time(&streaming_counters(n), &w);
            let tput = m.throughput(&w, &est);
            assert!(tput >= last, "dip at 2^{log_n}: {tput:.3e} < {last:.3e}");
            last = tput;
        }
    }

    #[test]
    fn doubling_traffic_halves_saturated_throughput() {
        // The Scan code's 2x traffic halves its large-input throughput.
        let m = model();
        let n = 1u64 << 30;
        let w = workload(n, 9 * 1024);
        let est1 = m.time(&streaming_counters(n), &w);
        let double = Counters {
            global_read_bytes: n * 8,
            l2_read_miss_bytes: n * 8,
            global_write_bytes: n * 8,
            ..Counters::new()
        };
        let est2 = m.time(&double, &w);
        let ratio = m.throughput(&w, &est1) / m.throughput(&w, &est2);
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn compute_bound_when_ops_dominate() {
        let m = model();
        let n = 1u64 << 26;
        let w = workload(n, 9 * 1024);
        // 400 ops per element: far beyond what the 4-byte traffic needs
        // (the roof crossover on this device sits near 103 ops/element).
        let c = Counters {
            flops: n * 400,
            ..streaming_counters(n)
        };
        let est = m.time(&c, &w);
        assert!(est.compute_time > est.memory_time);
    }

    #[test]
    fn underutilization_penalizes_few_blocks() {
        let m = model();
        // Same total ops, once in 2 blocks, once spread over 96.
        let c = Counters {
            flops: 1 << 24,
            ..Counters::new()
        };
        let mut w_few = workload(1 << 20, 1 << 19); // 2 blocks
        let mut w_many = workload(1 << 20, 1 << 14); // 64 blocks
        w_few.exposed_hops = 0;
        w_many.exposed_hops = 0;
        let t_few = m.time(&c, &w_few);
        let t_many = m.time(&c, &w_many);
        assert!(t_few.compute_time > t_many.compute_time);
    }

    #[test]
    fn atomics_cost_more_than_flops() {
        let m = model();
        let w = workload(1 << 20, 1 << 10);
        let flops = Counters {
            flops: 1 << 20,
            ..Counters::new()
        };
        let atomics = Counters {
            atomics: 1 << 20,
            ..Counters::new()
        };
        assert!(m.time(&atomics, &w).compute_time > m.time(&flops, &w).compute_time);
    }
}
