//! Event counters accumulated during a simulated execution.

/// Raw event counts from one simulated run.
///
/// All byte quantities count payload bytes (the cache model separately
/// accounts line-granular misses). The counters deliberately mirror the
/// quantities the paper reports: global traffic (Section 2.2's data
/// movement analysis), L2 read misses (Table 3), and the op-level costs
/// that feed the timing model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Bytes read from global memory.
    pub global_read_bytes: u64,
    /// Bytes written to global memory.
    pub global_write_bytes: u64,
    /// Bytes of L2 read misses (line granularity × line size).
    pub l2_read_miss_bytes: u64,
    /// Shared-memory accesses (reads + writes, element granularity).
    pub shared_accesses: u64,
    /// Warp shuffle operations.
    pub shuffles: u64,
    /// Arithmetic operations (a multiply-add counts as one).
    pub flops: u64,
    /// Atomic operations on global memory.
    pub atomics: u64,
    /// Memory fences.
    pub fences: u64,
    /// Look-back hops performed (flag polls that found carries).
    pub lookback_hops: u64,
    /// Spin iterations while waiting for carries (flag polls that failed).
    pub spin_waits: u64,
}

impl Counters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total global traffic (reads + writes) in bytes.
    pub fn global_traffic_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes
    }

    /// Adds every field of `other` into `self`.
    pub fn merge(&mut self, other: &Counters) {
        self.global_read_bytes += other.global_read_bytes;
        self.global_write_bytes += other.global_write_bytes;
        self.l2_read_miss_bytes += other.l2_read_miss_bytes;
        self.shared_accesses += other.shared_accesses;
        self.shuffles += other.shuffles;
        self.flops += other.flops;
        self.atomics += other.atomics;
        self.fences += other.fences;
        self.lookback_hops += other.lookback_hops;
        self.spin_waits += other.spin_waits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed() {
        let c = Counters::new();
        assert_eq!(c.global_traffic_bytes(), 0);
        assert_eq!(c, Counters::default());
    }

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = Counters {
            global_read_bytes: 1,
            flops: 2,
            ..Counters::new()
        };
        let b = Counters {
            global_read_bytes: 10,
            global_write_bytes: 20,
            l2_read_miss_bytes: 30,
            shared_accesses: 40,
            shuffles: 50,
            flops: 60,
            atomics: 70,
            fences: 80,
            lookback_hops: 90,
            spin_waits: 100,
        };
        a.merge(&b);
        assert_eq!(a.global_read_bytes, 11);
        assert_eq!(a.global_write_bytes, 20);
        assert_eq!(a.l2_read_miss_bytes, 30);
        assert_eq!(a.shared_accesses, 40);
        assert_eq!(a.shuffles, 50);
        assert_eq!(a.flops, 62);
        assert_eq!(a.atomics, 70);
        assert_eq!(a.fences, 80);
        assert_eq!(a.lookback_hops, 90);
        assert_eq!(a.spin_waits, 100);
        assert_eq!(a.global_traffic_bytes(), 31);
    }
}
