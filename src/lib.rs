//! # plr
//!
//! A comprehensive Rust reproduction of Maleki & Burtscher, *Automatic
//! Hierarchical Parallelization of Linear Recurrences* (ASPLOS 2018).
//!
//! This facade crate re-exports the workspace's layers:
//!
//! * [`core`] (`plr-core`) — signatures, n-nacci correction factors, the
//!   two-phase algorithm, filter design, stability analysis;
//! * [`sim`] (`plr-sim`) — the hierarchical GPU-like machine model
//!   (warps/blocks/grid, memory traffic, L2 cache, analytic timing);
//! * [`codegen`] (`plr-codegen`) — the PLR compiler: signature → CUDA
//!   source + an executable kernel plan;
//! * [`baselines`] (`plr-baselines`) — the paper's comparison codes
//!   (memcpy, CUB-like, SAM-like, Blelloch Scan, Alg3-like, Rec-like);
//! * [`parallel`] (`plr-parallel`) — a real multithreaded CPU runtime;
//! * [`service`] (`plr-service`) — a multi-tenant service core over that
//!   runtime: sharded worker pools behind admission control, per-tenant
//!   token-bucket quotas, weighted fair queueing, and admission-time
//!   load shedding under overload.
//!
//! ## Quickstart
//!
//! ```
//! use plr::{Engine, Signature};
//!
//! // The 2nd-order prefix sum from the paper's worked example.
//! let sig: Signature<i32> = "(1: 2, -1)".parse()?;
//! let engine = Engine::new(sig)?;
//! let y = engine.run(&[3, -4, 5, -6])?;
//! assert_eq!(y, vec![3, 2, 6, 4]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Generate the CUDA code the paper's compiler would emit:
//!
//! ```
//! use plr::codegen::Plr;
//!
//! let compiled = Plr::new().compile_str::<f32>("0.2 : 0.8", 1 << 24)?;
//! assert!(compiled.cuda.contains("__global__ void plr_kernel"));
//! # Ok::<(), plr::core::error::SignatureError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use plr_baselines as baselines;
pub use plr_codegen as codegen;
pub use plr_core as core;
pub use plr_parallel as parallel;
pub use plr_service as service;
pub use plr_sim as sim;

pub use plr_core::varying::VaryingSignature;
pub use plr_core::{
    CorrectionPlan, Element, Engine, PlanKind, PlanMode, SegmentedPlan, Segments, Signature,
};
pub use plr_parallel::{
    BatchRunner, CancelToken, ParallelRunner, RowHandle, RowStream, RunControl, RunHandle,
    RunnerConfig, SegmentedRunner, Strategy, VaryingRunner,
};
pub use plr_service::{ServiceConfig, ServiceCore, SubmitOptions, TenantSpec};
