//! Streaming row submission — push rows as they arrive, harvest results
//! as they complete.
//!
//! A batch API wants all its rows up front; a service rarely has them.
//! [`BatchRunner::stream`] opens a [`RowStream`]: each `push_row` hands
//! one row to the worker pool and returns a [`RowHandle`] that resolves
//! independently — poll it, wait on it, `await` it, cancel it, or give
//! it its own deadline. A bounded in-flight window gives the producer
//! backpressure instead of unbounded buffering, and one failed row
//! resolves only its own handle: the rest of the stream keeps flowing.
//!
//! ```text
//! cargo run --release --example stream_rows
//! ```

use plr::parallel::block_on;
use plr::{BatchRunner, CancelToken, RowHandle, RunControl, Signature};
use std::future::IntoFuture;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sig: Signature<f64> = "0.2 : 0.8".parse()?; // a smoothing one-pole
    let runner = BatchRunner::new(sig, 4);

    // 1. Rows trickle in; results come back per row, in completion
    // order, not submission order. The window (2 x threads by default)
    // blocks `push_row` once that many rows are queued or in flight.
    let stream = runner.stream();
    println!("window: {} rows in flight at most", stream.window());
    let mut handles: Vec<RowHandle<f64>> = Vec::new();
    for row in 0..8 {
        // Stand-in for "the next request arriving": each row is a short
        // burst with a different amplitude.
        let data: Vec<f64> = (0..4096)
            .map(|i| ((i % 97) as f64) * (row + 1) as f64)
            .collect();
        handles.push(stream.push_row(data));
    }

    // Harvest out of order: whichever row we ask for first, its handle
    // blocks only for *that* row.
    for handle in handles.into_iter().rev() {
        let index = handle.index();
        let (data, result) = handle.join();
        let stats = result?;
        println!(
            "row {index}: {} samples solved in {:.1}us",
            data.len(),
            stats.solve_nanos as f64 / 1e3
        );
    }

    // 2. Per-row control: one row gets a cancel token, another gets its
    // own wall-clock budget. Neither touches the rows around it.
    let token = CancelToken::new();
    let cancelled = stream.push_row_ctl(vec![1.0; 1 << 20], RunControl::new().with_cancel(&token));
    token.cancel(); // e.g. the client hung up
    let deadlined = stream.push_row_ctl(
        vec![1.0; 4096],
        RunControl::new().with_deadline(Duration::from_secs(5)),
    );
    let normal = stream.push_row(vec![1.0; 4096]);
    match cancelled.join().1 {
        Err(e) => println!("cancelled row reports: {e}"),
        Ok(_) => println!("cancelled row finished before the cancel landed"),
    }
    deadlined.join().1?; // 5s is plenty: resolves Ok
    normal.join().1?;
    println!("the rows around the cancelled one were untouched");

    // 3. The handles are futures: `await` them from any executor — or
    // from none, with the bundled park/unpark `block_on`.
    let start = Instant::now();
    let handle = stream.push_row((0..65_536).map(|i| i as f64).collect());
    let (data, result) = block_on(handle.into_future());
    result?;
    println!(
        "awaited row: {} samples in {:.1?}, y[last] = {:.3e}",
        data.len(),
        start.elapsed(),
        data.last().unwrap()
    );

    // 4. `finish` closes the stream, drains the workers, and reports the
    // aggregate: the cancelled row shows up as an abort, not a hang.
    match stream.finish() {
        Ok(stats) => println!("stream drained clean: {} rows", stats.rows),
        Err(e) => println!("stream drained; first error was: {e}"),
    }
    Ok(())
}
