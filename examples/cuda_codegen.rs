//! Inspect the CUDA code the PLR compiler emits for different signatures —
//! including how the correction-factor optimizations specialize the code.
//!
//! ```text
//! cargo run --example cuda_codegen                 # summary of all 11
//! cargo run --example cuda_codegen "(1: 0, 1)"     # full source for one
//! ```

use plr::codegen::lower::LowerOptions;
use plr::codegen::{Optimizations, Plr};
use plr::core::prefix;
use plr::Signature;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if let Some(sig_text) = std::env::args().nth(1) {
        // Full source for one signature.
        let compiled = Plr::new().compile_str::<f64>(&sig_text, 1 << 24)?;
        println!("{}", compiled.cuda);
        return Ok(());
    }

    // Summary across the paper's Table 1 catalog.
    println!(
        "{:<42} {:>6} {:>7} {:>10} {:>12}",
        "signature", "order", "m", "factor", "cuda lines"
    );
    println!("{:<42} {:>6} {:>7} {:>10} {:>12}", "", "", "", "arrays", "");
    for entry in prefix::catalog() {
        let n = 1 << 24;
        // Display via f32, which rounds the cascade products back to the
        // paper's tidy coefficients.
        let display: Signature<f32> = entry.signature.cast();
        let (arrays, lines, m) = if entry.integral {
            let sig: Signature<i64> = entry.signature.cast();
            let c = Plr::new().compile(&sig, n);
            (
                c.plan.materialized_lists(),
                c.cuda.lines().count(),
                c.plan.chunk_size(),
            )
        } else {
            let sig: Signature<f32> = entry.signature.cast();
            let c = Plr::new().compile(&sig, n);
            (
                c.plan.materialized_lists(),
                c.cuda.lines().count(),
                c.plan.chunk_size(),
            )
        };
        println!(
            "{:<42} {:>6} {:>7} {:>10} {:>12}",
            display.to_string(),
            entry.signature.order(),
            m,
            arrays,
            lines
        );
    }

    // Show what turning the optimizations off does to one kernel.
    let sig: Signature<f32> = "0.04 : 1.6, -0.64".parse()?;
    let on = Plr::new().compile(&sig, 1 << 24);
    let off = Plr::new()
        .with_options(LowerOptions {
            opts: Optimizations::none(),
            ..Default::default()
        })
        .compile(&sig, 1 << 24);
    println!(
        "\n2-stage low-pass factor arrays: optimized {} lines of CUDA \
         (decay-truncated arrays), unoptimized {} lines (full {}-entry arrays)",
        on.cuda.lines().count(),
        off.cuda.lines().count(),
        off.plan.chunk_size(),
    );
    Ok(())
}
