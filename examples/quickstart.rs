//! Quickstart: express a recurrence as a signature, run it three ways
//! (serial reference, two-phase engine, multithreaded runtime), and peek
//! at the CUDA code the PLR compiler generates for it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use plr::codegen::Plr;
use plr::core::{serial, validate};
use plr::{Engine, ParallelRunner, Signature};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's worked example: the second-order prefix sum (1: 2, -1).
    let sig: Signature<i64> = "(1: 2, -1)".parse()?;
    println!("signature     {sig}  (order {})", sig.order());

    let input: Vec<i64> = vec![3, -4, 5, -6, 7, -8, 9, -10, 11, -12];

    // 1. The serial reference from the paper's Section 2.
    let expected = serial::run(&sig, &input);
    println!("serial        {expected:?}");

    // 2. The single-threaded two-phase engine (Phase 1 hierarchical
    //    doubling with n-nacci correction factors, Phase 2 carry
    //    propagation).
    let engine = Engine::new(sig.clone())?;
    let y = engine.run(&input)?;
    println!("two-phase     {y:?}");
    validate::validate(&expected, &y, 0.0)?;

    // The correction factors the engine precomputed — the paper's Section
    // 2.3 lists exactly these for (1: 2, -1).
    let table = engine.correction_table();
    println!("factor list 1 {:?}…", &table.list(0)[..8]);
    println!("factor list 2 {:?}…", &table.list(1)[..8]);

    // 3. The real multithreaded runtime (decoupled look-back on threads).
    let runner = ParallelRunner::new(sig.clone())?;
    let y = runner.run(&input)?;
    validate::validate(&expected, &y, 0.0)?;
    println!("parallel      {y:?}  ({} threads)", runner.threads());

    // 4. What the PLR compiler emits for a GPU.
    let compiled = Plr::new().compile_str::<i64>("(1: 2, -1)", 1 << 24)?;
    let kernel_line = compiled
        .cuda
        .lines()
        .find(|l| l.contains("__global__"))
        .expect("kernel present");
    println!("\ncuda kernel   {kernel_line}");
    println!(
        "              ({} lines of CUDA generated)",
        compiled.cuda.lines().count()
    );
    println!(
        "chunk size m  {} (x = {})",
        compiled.plan.chunk_size(),
        compiled.plan.x
    );
    Ok(())
}
