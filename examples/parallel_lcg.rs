//! Parallel reproduction of a linear congruential generator — one of the
//! "pseudo random-number generation" applications the paper's introduction
//! cites for linear recurrences.
//!
//! An LCG is `s[i] = a·s[i-1] + c (mod 2^64)`, which is the signature
//! `(1 : a)` applied to the constant input stream `x[i] = c` with the seed
//! folded into `x[0]` — two's-complement wrapping arithmetic *is* the
//! mod-2^64 arithmetic, which is why the whole workspace computes integers
//! with wrapping semantics like GPU hardware does.
//!
//! The example reproduces a sequential LCG's entire output stream in
//! parallel, bit for bit.
//!
//! ```text
//! cargo run --release --example parallel_lcg
//! ```

use plr::{ParallelRunner, RunnerConfig, Signature, Strategy};
use std::time::Instant;

/// Knuth's MMIX LCG constants.
const A: i64 = 6364136223846793005;
const C: i64 = 1442695040888963407;

fn sequential_lcg(seed: i64, n: usize) -> Vec<i64> {
    let mut out = Vec::with_capacity(n);
    let mut s = seed;
    for _ in 0..n {
        s = s.wrapping_mul(A).wrapping_add(C);
        out.push(s);
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1 << 22;
    let seed = 0x5EED_5EED_5EED_5EEDu64 as i64;

    // s[i] = A·s[i-1] + x[i] with x[0] = A·seed + C and x[i>0] = C.
    let sig: Signature<i64> = Signature::new(vec![1], vec![A])?;
    let mut input = vec![C; n];
    input[0] = seed.wrapping_mul(A).wrapping_add(C);

    let runner = ParallelRunner::with_config(
        sig,
        RunnerConfig {
            chunk_size: 1 << 16,
            threads: 0,
            strategy: Strategy::default(),
            ..Default::default()
        },
    )?;

    let start = Instant::now();
    let parallel = runner.run(&input)?;
    let t_par = start.elapsed();

    let start = Instant::now();
    let sequential = sequential_lcg(seed, n);
    let t_seq = start.elapsed();

    assert_eq!(
        parallel, sequential,
        "the parallel stream must match bit for bit"
    );

    println!("reproduced {n} MMIX LCG states bit-exactly");
    println!("  sequential: {:7.1} ms", t_seq.as_secs_f64() * 1e3);
    println!(
        "  parallel:   {:7.1} ms on {} threads (correction factors A, A², A³, … mod 2^64)",
        t_par.as_secs_f64() * 1e3,
        runner.threads()
    );
    println!("  first states: {:x?}", &parallel[..4]);

    // The punchline: the correction factors of (1 : A) are the powers of A
    // in the wrapping ring, so jumping ahead m steps is one multiply-add —
    // exactly the classic LCG leapfrogging trick, rediscovered as n-nacci
    // correction factors.
    let table = plr::core::nacci::CorrectionTable::generate(&[A], 4);
    println!("  factor list (powers of A mod 2^64): {:x?}", table.list(0));
    Ok(())
}
