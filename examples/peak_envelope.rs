//! A max-plus (tropical) recurrence in parallel: the audio peak-envelope
//! follower `y[i] = max(x[i], y[i-1] - λ)` — the paper's "operators other
//! than addition" future work, running through the *same* correction-factor
//! machinery (the factors become maximal path weights `-λ, -2λ, -3λ, …`).
//!
//! ```text
//! cargo run --release --example peak_envelope
//! ```

use plr::core::tropical::MaxPlus;
use plr::core::{serial, validate};
use plr::{Element, ParallelRunner, RunnerConfig, Signature, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1 << 20;
    let decay = 0.002; // envelope decay per sample

    // A bursty "audio" signal: silence with occasional transients.
    let signal: Vec<MaxPlus> = (0..n)
        .map(|i| {
            let burst = (i % 9973 == 0) as u32 as f64 * (3.0 + (i % 7) as f64);
            MaxPlus::new(burst)
        })
        .collect();

    // y[i] = max(x[i], y[i-1] - λ)  ≡  (one : -λ) over (max, +).
    let sig: Signature<MaxPlus> = Signature::new(vec![MaxPlus::one()], vec![MaxPlus::new(-decay)])?;

    let runner = ParallelRunner::with_config(
        sig.clone(),
        RunnerConfig {
            chunk_size: 1 << 14,
            threads: 0,
            strategy: Strategy::TwoPass,
            ..Default::default()
        },
    )?;
    let envelope = runner.run(&signal)?;
    validate::validate(&serial::run(&sig, &signal), &envelope, 1e-9)?;

    let peak = envelope
        .iter()
        .map(|v| v.value())
        .fold(f64::NEG_INFINITY, f64::max);
    let at_end = envelope.last().unwrap().value();
    println!("peak-envelope follower over {n} samples (λ = {decay}/sample)");
    println!(
        "  computed in parallel on {} threads, validated vs serial",
        runner.threads()
    );
    println!("  max envelope {peak:.2}, envelope at end {at_end:.3}");

    // The tropical correction factors for this recurrence: -λ·(i+1), the
    // best decayed path from the carry — printed for the first few lags.
    let table = plr::core::nacci::CorrectionTable::generate(&[MaxPlus::new(-decay)], 5);
    let factors: Vec<f64> = table.list(0).iter().map(|f| f.value()).collect();
    println!("  tropical correction factors: {factors:?}");
    Ok(())
}
