//! Stream compaction with a parallel prefix sum — the classic prefix-sum
//! application the paper's introduction cites (alongside sorting,
//! histograms, and lexical analysis).
//!
//! Given a large array and a predicate, compaction gathers the elements
//! satisfying the predicate into a dense output. The scatter offsets are an
//! exclusive prefix sum of the predicate flags, computed here with the
//! multithreaded PLR runtime.
//!
//! ```text
//! cargo run --release --example stream_compaction
//! ```

use plr::core::prefix;
use plr::{ParallelRunner, RunnerConfig, Strategy};
use std::time::Instant;

/// Compacts `data` keeping elements where `keep` is true, using a parallel
/// inclusive prefix sum over the flags.
fn compact(data: &[u32], keep: impl Fn(u32) -> bool + Sync) -> Vec<u32> {
    let flags: Vec<i64> = data.iter().map(|&v| i64::from(keep(v))).collect();

    let runner = ParallelRunner::with_config(
        prefix::prefix_sum::<i64>(),
        RunnerConfig {
            chunk_size: 1 << 16,
            threads: 0,
            strategy: Strategy::default(),
            ..Default::default()
        },
    )
    .expect("valid config");
    let offsets = runner.run(&flags).expect("within size limits");

    let total = *offsets.last().unwrap_or(&0) as usize;
    let mut out = vec![0u32; total];
    for (i, &v) in data.iter().enumerate() {
        // Inclusive scan: offsets[i] - flags[i] is the exclusive offset.
        if flags[i] == 1 {
            out[(offsets[i] - 1) as usize] = v;
        }
    }
    out
}

fn main() {
    let n = 1 << 22;
    // Deterministic pseudo-random input.
    let data: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    let keep = |v: u32| v.is_multiple_of(5);

    let start = Instant::now();
    let compacted = compact(&data, keep);
    let elapsed = start.elapsed();

    // Validate against the obvious sequential filter.
    let expected: Vec<u32> = data.iter().copied().filter(|&v| keep(v)).collect();
    assert_eq!(
        compacted, expected,
        "compaction must preserve order and content"
    );

    println!(
        "compacted {} of {} elements in {:.1} ms ({:.1} M elements/s)",
        compacted.len(),
        n,
        elapsed.as_secs_f64() * 1e3,
        n as f64 / elapsed.as_secs_f64() / 1e6,
    );
    println!(
        "first survivors: {:?}",
        &compacted[..8.min(compacted.len())]
    );
    println!("validated against the sequential filter");
}
