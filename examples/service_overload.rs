//! Multi-tenant service under overload — quotas, fair shares, shedding.
//!
//! [`ServiceCore`] fronts the parallel runtime for many tenants at once:
//! each tenant registers its recurrence once, then submits rows and gets
//! per-row handles back. The core enforces three things at admission —
//! token-bucket quotas, weighted fair queueing across backlogged
//! tenants, and load shedding when the estimated queue delay would blow
//! a row's deadline — so an overloaded service degrades by *rejecting
//! cheaply at the door* (with a retry hint) instead of by queueing
//! unboundedly and missing every deadline at once.
//!
//! ```text
//! cargo run --release --example service_overload
//! ```

use plr::parallel::retry::{retry_with_backoff, Backoff, RetryOutcome};
use plr::{ServiceConfig, ServiceCore, SubmitOptions, TenantSpec};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately small core: one shard, two workers, and room for
    // only eight queued rows — overload is the point of this demo.
    let core: ServiceCore<f64> = ServiceCore::new(ServiceConfig {
        shards: 1,
        threads_per_shard: 2,
        max_queue: 8,
    });

    // Two paying tiers and a metered free tier. Weight decides who wins
    // the queue when everyone is backlogged; the quota caps the free
    // tier's admission rate outright (2 rows/s, burst of 3).
    let gold = core.add_tenant(TenantSpec::new("gold", "0.2 : 0.8".parse()?).with_weight(4));
    let silver = core.add_tenant(TenantSpec::new("silver", "(1: 1, 1)".parse()?).with_weight(2));
    let free = core.add_tenant(TenantSpec::new("free", "(1: 2, -1)".parse()?).with_quota(2.0, 3.0));

    // 1. Normal load: everything is admitted, handles resolve per row.
    let row = |salt: u64| -> Vec<f64> {
        (0..32_768)
            .map(|i| ((i as u64).wrapping_mul(salt) % 97) as f64 / 97.0)
            .collect()
    };
    let handle = core.submit(gold, row(3), SubmitOptions::default())?;
    let (data, result) = handle.join();
    result?;
    println!(
        "calm sea: gold row solved, y[last] = {:.3}",
        data.last().unwrap()
    );

    // 2. The free tier hits its quota: the 4th row inside the burst
    // window bounces with `QuotaExceeded` and a refill hint. The error
    // is retryable — nothing about the tenant or the service is broken.
    let mut free_ok = 0usize;
    let mut quota_hint = None;
    for salt in 0..5 {
        match core.submit(free, row(salt + 11), SubmitOptions::default()) {
            Ok(h) => {
                free_ok += 1;
                h.join().1?;
            }
            Err(e) => {
                assert!(e.is_retryable());
                quota_hint = e.retry_after_hint();
                break;
            }
        }
    }
    println!(
        "free tier: {free_ok} rows admitted, then quota-shed (retry after {:?})",
        quota_hint.unwrap_or_default()
    );

    // 3. Overload: flood the core far past its queue. Rows carry a
    // deadline budget, so admission refuses work it already knows will
    // miss — `Overloaded`, again retryable, again with a hint.
    let budget = SubmitOptions::deadline(Duration::from_secs(2));
    let mut handles = Vec::new();
    let mut shed = 0usize;
    for salt in 0..64 {
        let tenant = if salt % 3 == 0 { silver } else { gold };
        match core.submit(tenant, row(salt + 29), budget.clone()) {
            Ok(h) => handles.push(h),
            Err(_) => shed += 1,
        }
    }
    println!(
        "storm: {} of 64 rows admitted, {shed} shed at the door",
        handles.len()
    );

    // Every *admitted* row still completes — shedding protects the rows
    // the core said yes to.
    for h in handles {
        h.join().1?;
    }
    println!("storm: every admitted row completed within budget");

    // 4. A well-behaved client wraps submission in decorrelated-jitter
    // backoff: sheds become sleeps, and the row lands once the queue
    // drains. `retry_with_backoff` honours the rejection's hint.
    let mut backoff = Backoff::new(Duration::from_millis(1), Duration::from_millis(50));
    let outcome = retry_with_backoff(16, &mut backoff, || {
        core.submit(gold, row(101), SubmitOptions::default())
    });
    match outcome {
        RetryOutcome::Ok(h) => {
            h.join().1?;
            println!("patient client: admitted after backoff");
        }
        other => println!("patient client: gave up ({other:?})"),
    }

    // 5. The ledger: per-tenant admission/shed/goodput counters and
    // per-shard queue health.
    let stats = core.stats();
    for t in &stats.tenants {
        println!(
            "tenant {:<6} w{}: submitted {:>3}, admitted {:>3}, completed {:>3}, \
             shed {} (quota {} / overload {})",
            t.name,
            t.weight,
            t.submitted,
            t.admitted,
            t.completed,
            t.shed_quota + t.shed_overload,
            t.shed_quota,
            t.shed_overload,
        );
    }
    for (i, s) in stats.shards.iter().enumerate() {
        println!(
            "shard {i}: {} workers, {} rows served, ewma service {:.1}us, degraded: {}",
            s.width,
            s.processed,
            s.ewma_service_nanos as f64 / 1e3,
            s.degraded
        );
    }

    core.shutdown();
    Ok(())
}
