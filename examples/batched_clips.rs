//! Batched audio clips as one segmented recurrence.
//!
//! A batch of independent clips is usually processed clip-by-clip; the
//! segmented machinery concatenates them into *one* buffer with the
//! filter history reset at every clip boundary, so the whole batch runs
//! through the chunked parallel pipeline in a single call. A reset is a
//! zero carry — look-back terminates at the nearest boundary instead of
//! chunk 0, and a chunk of pure silence skips its local solve outright
//! (the sparse fast path), so padding costs almost nothing.
//!
//! ```text
//! cargo run --release --example batched_clips
//! ```

use plr::core::segmented::run_serial;
use plr::{RunnerConfig, SegmentedRunner, Segments, Signature, Strategy};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A one-pole smoothing filter, the workhorse of envelope detection.
    let sig: Signature<f64> = "0.2 : 0.8".parse()?;

    // 64 clips of 16384 samples each, padded into uniform slots (a
    // real batch would right-pad each clip with silence to the slot
    // size — exactly the shape the sparse skip eats for free).
    let clip_len = 16_384;
    let clips = 64;
    let n = clip_len * clips;
    let segments = Segments::uniform(clip_len, n);
    let mut batch = vec![0.0f64; n];
    for c in 0..clips {
        // Every clip is a decaying burst; half of each slot is silence.
        for i in 0..clip_len / 2 {
            batch[c * clip_len + i] =
                ((i % 127) as f64 - 63.0) * (1.0 - i as f64 / clip_len as f64);
        }
    }

    // One runner, bound to this batch shape; the boundary map and
    // correction plan are built once and reused across runs.
    let runner = SegmentedRunner::with_config(
        sig.clone(),
        segments.clone(),
        n,
        RunnerConfig {
            chunk_size: 8192,
            threads: 4,
            strategy: Strategy::LookbackPipeline,
            ..Default::default()
        },
    )?;

    let start = Instant::now();
    let mut data = batch.clone();
    let stats = runner.run_in_place(&mut data)?;
    let parallel = start.elapsed();
    println!(
        "{clips} clips x {clip_len} samples in {parallel:.1?} \
         ({} chunks: {} with resets, {} silent chunks skipped)",
        stats.chunks, stats.reset_chunks, stats.skipped_chunks
    );

    // The per-clip serial loop computes the same thing — bit-for-bit on
    // this contractive filter's zero-padded tails.
    let start = Instant::now();
    let reference = run_serial(&sig, &segments, &batch);
    println!("clip-by-clip serial loop: {:.1?}", start.elapsed());
    let worst = data
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |parallel - serial| = {worst:.2e}");

    // Because every clip shares one plan, a *batch of batches* — rows of
    // independent recordings under the same slot layout — goes through
    // the same runner's row API.
    let rows = 8;
    let mut matrix: Vec<f64> = (0..rows).flat_map(|_| batch.iter().copied()).collect();
    let stats = runner.run_rows(&mut matrix, n)?;
    println!(
        "{} rows of the same layout: {} row-chunks solved",
        stats.rows, stats.chunks
    );
    // Rows go through the per-row solve (not the chunked pipeline), so
    // they are bit-identical to each other and agree with the chunked
    // output to rounding.
    let first = &matrix[..n];
    for row in matrix.chunks(n).skip(1) {
        assert_eq!(row, first, "identical rows solve identically");
    }
    let row_worst = first
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |row path - serial| = {row_worst:.2e}");
    Ok(())
}
