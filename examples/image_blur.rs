//! Row-wise recursive image smoothing — the 2D workload of the paper's
//! Alg3/Rec comparison, computed with the batch runner (whole rows across
//! worker threads) and the forward-backward pass for a zero-phase blur.
//!
//! ```text
//! cargo run --release --example image_blur
//! ```

use plr::core::{anticausal, filters, serial};
use plr::parallel::BatchRunner;
use plr::Signature;
use std::time::Instant;

/// Horizontal zero-phase blur of a row-major image: causal + anticausal
/// low-pass per row.
fn blur_rows(image: &mut [f32], width: usize, sig: &Signature<f32>, threads: usize) {
    // Causal pass over every row in parallel…
    let runner = BatchRunner::new(sig.clone(), threads);
    runner
        .run_rows(image, width)
        .expect("width divides the image");
    // …then the anticausal pass: reverse each row, filter, reverse back.
    for row in image.chunks_mut(width) {
        row.reverse();
    }
    runner
        .run_rows(image, width)
        .expect("width divides the image");
    for row in image.chunks_mut(width) {
        row.reverse();
    }
}

fn main() {
    let (w, h) = (1024usize, 1024usize);
    // A synthetic image: a bright box on a dark background plus noise.
    let mut image: Vec<f32> = (0..w * h)
        .map(|i| {
            let (x, y) = (i % w, i / w);
            let in_box = (300..700).contains(&x) && (300..700).contains(&y);
            let noise = (((i as u32).wrapping_mul(2_654_435_761) >> 16) % 100) as f32 / 500.0;
            if in_box {
                1.0 + noise
            } else {
                noise
            }
        })
        .collect();

    let sig: Signature<f32> = filters::low_pass(0.9, 1).cast();
    let original = image.clone();

    let start = Instant::now();
    blur_rows(&mut image, w, &sig, 0);
    let elapsed = start.elapsed();

    // Validate one row against the single-threaded forward-backward pass.
    let probe = 512;
    let expect = anticausal::forward_backward(&sig, &original[probe * w..(probe + 1) * w]);
    let got = &image[probe * w..(probe + 1) * w];
    let max_err = expect
        .iter()
        .zip(got)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_err < 1e-3, "row {probe} deviates by {max_err}");

    // Edge sharpness before/after: the blur must soften the box edge.
    let edge = |img: &[f32]| (img[probe * w + 300] - img[probe * w + 295]).abs();
    println!("{w}x{h} image, horizontal zero-phase blur {sig}");
    println!(
        "  {:.1} ms ({:.1} Mpixel/s), validated against the serial forward-backward pass",
        elapsed.as_secs_f64() * 1e3,
        (w * h) as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "  box edge step: {:.3} before -> {:.3} after",
        edge(&original),
        edge(&image)
    );
    let serial_row = serial::run(&sig, &original[..w]);
    println!(
        "  (causal-only row mean {:.3} for reference)",
        serial_row.iter().sum::<f32>() / w as f32
    );
}
