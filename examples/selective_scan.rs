//! Parallel selective scan — the gated order-1 recurrence at the heart of
//! selective state-space models (Mamba-style):
//!
//! ```text
//! h[i] = a[i]·h[i-1] + x[i]
//! ```
//!
//! where the gate `a[i]` is a *different* coefficient per element, so the
//! constant-coefficient engines cannot express it. `VaryingSignature`
//! lowers it onto the same chunk/carry machinery: every chunk's effect on
//! the hidden state collapses to one transition scalar (a k×k matrix at
//! higher orders), precomputed once at plan build, and the workers run the
//! decoupled look-back of the constant path over those matrix carries.
//!
//! The example gates a token stream the way an SSM does — a gate near 1
//! retains state across a span, a gate near 0 resets at a boundary — and
//! checks the parallel result against the naive sequential scan.
//!
//! ```text
//! cargo run --release --example selective_scan
//! ```

use plr::{RunnerConfig, Strategy, VaryingRunner, VaryingSignature};
use std::time::Instant;

/// A deterministic stream of "retain" gates in [0.85, 0.95] with a hard
/// reset (gate 0) every 1000 elements — span boundaries, SSM-style.
fn gates(n: usize) -> Vec<f64> {
    let mut s = 0x00d1_5ea5_e5ca_1a7eu64;
    (0..n)
        .map(|i| {
            if i % 1000 == 0 {
                return 0.0;
            }
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            0.85 + 0.10 * ((s >> 11) as f64 / (1u64 << 53) as f64)
        })
        .collect()
}

fn sequential_scan(gates: &[f64], input: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(input.len());
    let mut h = 0.0f64;
    for (&a, &x) in gates.iter().zip(input) {
        h = a * h + x;
        out.push(h);
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1 << 21;
    let a = gates(n);
    let x: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) * 0.25 - 2.0).collect();

    // One coefficient per element: order 1, n gates.
    let sig = VaryingSignature::first_order(a.clone())?;
    let runner = VaryingRunner::with_config(
        sig,
        RunnerConfig {
            chunk_size: 1 << 16,
            threads: 0,
            strategy: Strategy::default(),
            ..Default::default()
        },
    )?;

    let start = Instant::now();
    let mut parallel = x.clone();
    let stats = runner.run_in_place(&mut parallel)?;
    let t_par = start.elapsed();

    let start = Instant::now();
    let sequential = sequential_scan(&a, &x);
    let t_seq = start.elapsed();

    let worst_rel = parallel
        .iter()
        .zip(&sequential)
        .map(|(p, s)| (p - s).abs() / s.abs().max(1.0))
        .fold(0.0f64, f64::max);
    assert!(
        worst_rel < 1e-12,
        "parallel scan drifted from the sequential reference: {worst_rel:e}"
    );

    println!("selective scan over {n} gated elements");
    println!("  sequential: {:7.1} ms", t_seq.as_secs_f64() * 1e3);
    println!(
        "  parallel:   {:7.1} ms on {} threads ({} chunks, {} fused, kernel {:?})",
        t_par.as_secs_f64() * 1e3,
        runner.threads(),
        stats.chunks,
        stats.fused_chunks,
        stats.kernel,
    );
    println!("  worst relative deviation: {worst_rel:.2e}");

    // State decays across each 1000-element span and resets at the gate-0
    // boundary — the "selective" part: the recurrence forgets on command.
    println!(
        "  around a reset: h[998..=1001] = {:?}",
        &parallel[998..=1001]
    );
    Ok(())
}
