//! Run one recurrence through every executor on the GPU machine model and
//! compare: functional outputs (validated), modelled throughput, memory
//! traffic, and L2 misses — a miniature of the paper's evaluation.
//!
//! ```text
//! cargo run --release --example gpu_model_comparison
//! ```

use plr::baselines::executor::RecurrenceExecutor;
use plr::baselines::{Cub, Sam, Scan};
use plr::core::{prefix, serial, validate};
use plr::sim::{CostModel, DeviceConfig};
use plr::Signature;
use plr_bench::PlrExecutor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceConfig::titan_x();
    let model = CostModel::new(device.clone());
    let n = 1 << 20;

    let sig: Signature<i64> = prefix::tuple_prefix_sum(2);
    let input: Vec<i64> = (0..n).map(|i| (i % 19) as i64 - 9).collect();
    let expected = serial::run(&sig, &input);

    println!(
        "2-tuple prefix sum {sig}, n = 2^20, device: {}\n",
        device.name
    );
    println!(
        "{:<8} {:>12} {:>14} {:>14} {:>12}",
        "code", "model GB/s*", "global rd MB", "global wr MB", "l2 miss MB"
    );

    let executors: Vec<(&str, Box<dyn RecurrenceExecutor<i64>>)> = vec![
        ("PLR", Box::new(PlrExecutor::default())),
        ("CUB", Box::new(Cub)),
        ("SAM", Box::new(Sam)),
        ("Scan", Box::new(Scan)),
    ];
    for (name, exec) in &executors {
        let report = exec.run(&sig, &input, &device)?;
        validate::validate(&expected, &report.output, 0.0)
            .unwrap_or_else(|e| panic!("{name} produced a wrong result: {e}"));
        let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
        println!(
            "{:<8} {:>12.2} {:>14.2} {:>14.2} {:>12.2}",
            name,
            report.throughput(&model) / 1e9 * 4.0, // bytes moved per word
            mb(report.counters.global_read_bytes),
            mb(report.counters.global_write_bytes),
            mb(report.counters.l2_read_miss_bytes),
        );
    }
    println!("\n* modelled words/s × 4 bytes; all four outputs validated against serial");
    println!("note how Scan moves (k²+k)× the data — Blelloch's matrix representation");
    Ok(())
}
