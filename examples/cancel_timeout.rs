//! Bounded-latency recurrence runs — cancellation, deadlines, and
//! non-blocking submission.
//!
//! A service that computes filters inline (audio effects, telemetry
//! smoothing) cannot let one wedged run hold its request thread hostage.
//! This example drives the three escape hatches the runtime provides:
//!
//! * a **deadline** in [`RunnerConfig`] that converts a run outliving its
//!   wall-clock budget into an error instead of a hang,
//! * a caller-held [`CancelToken`] that aborts an in-flight run from
//!   another thread, and
//! * [`WorkerPool::submit`], which hands a job to a donated driver thread
//!   and returns a [`RunHandle`] the caller can poll with a timeout.
//!
//! Timing-dependent outcomes (did the cancel land before the run
//! finished?) are printed either way — both are correct behaviour.
//!
//! ```text
//! cargo run --release --example cancel_timeout
//! ```

use plr::parallel::{AbortSignal, RunError, WorkerPool};
use plr::{CancelToken, ParallelRunner, RunControl, RunnerConfig, Signature};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sig: Signature<f64> = "1 : 0.999".parse()?; // a slow leaky integrator
    let input: Vec<f64> = (0..1 << 22).map(|i| ((i % 64) as f64) / 64.0).collect();
    let runner = ParallelRunner::with_config(
        sig.clone(),
        RunnerConfig {
            chunk_size: 1 << 14,
            threads: 0, // one worker per CPU
            // Every run on this runner gets 10 seconds of wall clock; a
            // wedged stage becomes EngineError::DeadlineExceeded, not a
            // hung request thread.
            deadline: Some(Duration::from_secs(10)),
            ..Default::default()
        },
    )?;

    // 1. A healthy run finishes well inside its deadline.
    let start = Instant::now();
    let out = runner.run(&input)?;
    println!(
        "deadline-bounded run: {} elements in {:.1?} (budget 10s), y[last] = {:.3}",
        out.len(),
        start.elapsed(),
        out.last().unwrap()
    );

    // An already-expired budget is rejected before any work is dispatched
    // — the fail-fast path a load-shedding service would hit.
    let strict = ParallelRunner::with_config(
        sig.clone(),
        RunnerConfig {
            chunk_size: 1 << 14,
            threads: 0,
            deadline: Some(Duration::ZERO),
            ..Default::default()
        },
    )?;
    match strict.run(&input) {
        Err(e) => println!("zero budget rejected up front: {e}"),
        Ok(_) => unreachable!("a zero deadline can never be met"),
    }

    // 2. Cancelling from another thread. The token is cloneable and
    // thread-safe; whichever happens first — the run completing or the
    // cancel landing — is a valid outcome, and the runner stays usable
    // either way.
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            token.cancel();
        })
    };
    let start = Instant::now();
    match runner.run_with_cancel(&input, &token) {
        Ok(out) => println!(
            "run beat the cancel ({:.1?}): y[last] = {:.3}",
            start.elapsed(),
            out.last().unwrap()
        ),
        Err(e) => println!("run cancelled after {:.1?}: {e}", start.elapsed()),
    }
    canceller.join().unwrap();
    let out = runner.run(&input)?; // the pool healed; reruns are exact
    println!("rerun after cancel: y[last] = {:.3}", out.last().unwrap());

    // 3. Non-blocking submission at the pool layer: the caller keeps its
    // thread, polls the handle with a timeout, and can give up (drop the
    // handle) knowing the run will be cancelled and quiesced.
    let pool = Arc::new(WorkerPool::new(4));
    let progress = Arc::new(AtomicU64::new(0));
    let handle = {
        let progress = Arc::clone(&progress);
        pool.submit(
            RunControl::new(),
            move |_worker: usize, abort: &AbortSignal| {
                // Stand-in for a long pipeline stage: cooperative slices that
                // poll the per-run abort signal between units of work.
                for _ in 0..20 {
                    if abort.is_aborted() {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                    progress.fetch_add(1, Ordering::Relaxed);
                }
            },
        )
    };
    let mut polls = 0u32;
    let verdict = loop {
        polls += 1;
        match handle.wait_timeout(Duration::from_millis(25)) {
            Some(result) => break result,
            None => println!(
                "  still running after poll {polls} ({} slices done)",
                progress.load(Ordering::Relaxed)
            ),
        }
    };
    match verdict {
        Ok(()) => println!("submitted run finished after {polls} poll(s)"),
        Err(RunError::Cancelled) => println!("submitted run was cancelled"),
        Err(e) => println!("submitted run failed: {e}"),
    }
    println!("pool counters: {:?}", pool.counters());
    Ok(())
}
