//! Recursive audio filtering — the IIR use case that motivates the paper's
//! floating-point evaluation.
//!
//! Builds a noisy synthetic "audio" signal (a low-frequency tone plus
//! high-frequency noise plus a DC offset), then:
//!
//! * removes the noise with the paper's 2-stage low-pass filter
//!   `(0.04 : 1.6, -0.64)`, and
//! * removes the DC offset with the 1-stage high-pass `(0.9, -0.9 : 0.8)`,
//!
//! both computed in parallel with the chunked decoupled-look-back runtime
//! and validated against the serial filter.
//!
//! ```text
//! cargo run --release --example audio_filter
//! ```

use plr::core::{filters, serial, validate};
use plr::{ParallelRunner, RunnerConfig, Signature, Strategy};
use std::f64::consts::TAU;
use std::time::Instant;

/// RMS of a signal after discarding the filter's warm-up transient.
fn rms(signal: &[f32]) -> f64 {
    let tail = &signal[signal.len() / 8..];
    (tail.iter().map(|&v| (v as f64).powi(2)).sum::<f64>() / tail.len() as f64).sqrt()
}

fn mean(signal: &[f32]) -> f64 {
    signal.iter().map(|&v| v as f64).sum::<f64>() / signal.len() as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1 << 22; // ~95 seconds at 44.1 kHz
    let sample_rate = 44_100.0;

    // tone at 120 Hz + noise at ~15 kHz + a 0.5 DC offset.
    let tone_hz = 120.0;
    let noise_hz = 15_000.0;
    let signal: Vec<f32> = (0..n)
        .map(|i| {
            let t = i as f64 / sample_rate;
            let tone = (TAU * tone_hz * t).sin();
            let noise = 0.8 * (TAU * noise_hz * t).sin();
            (tone + noise + 0.5) as f32
        })
        .collect();

    println!(
        "input:  {} samples, rms {:.3}, mean {:+.3}",
        n,
        rms(&signal),
        mean(&signal)
    );

    // --- Low-pass: keep the tone, strip the noise ------------------------
    let lp: Signature<f32> = filters::low_pass(0.8, 2).cast();
    println!("\nlow-pass  {lp}");
    let runner = ParallelRunner::with_config(
        lp.clone(),
        RunnerConfig {
            chunk_size: 1 << 15,
            threads: 0,
            strategy: Strategy::default(),
            ..Default::default()
        },
    )?;
    let start = Instant::now();
    let smoothed = runner.run(&signal)?;
    let elapsed = start.elapsed();
    validate::validate(&serial::run(&lp, &signal), &smoothed, 1e-3)?;
    println!(
        "  parallel run: {:.1} ms ({:.1} M samples/s), validated vs serial",
        elapsed.as_secs_f64() * 1e3,
        n as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "  rms {:.3} -> {:.3} (noise stripped), mean {:+.3} (DC kept)",
        rms(&signal),
        rms(&smoothed),
        mean(&smoothed)
    );

    // --- High-pass: remove the DC offset ---------------------------------
    let hp: Signature<f32> = filters::high_pass(0.8, 1).cast();
    println!("\nhigh-pass {hp}");
    let runner = ParallelRunner::with_config(
        hp.clone(),
        RunnerConfig {
            chunk_size: 1 << 15,
            threads: 0,
            strategy: Strategy::default(),
            ..Default::default()
        },
    )?;
    let centered = runner.run(&smoothed)?;
    validate::validate(&serial::run(&hp, &smoothed), &centered, 1e-3)?;
    println!(
        "  mean {:+.3} -> {:+.5} (DC removed)",
        mean(&smoothed),
        mean(&centered)
    );

    // --- Why the factors decay: stability analysis -----------------------
    let report = plr::core::stability::analyze(lp.feedback());
    println!(
        "\nfilter poles |z| = {:.3} (stable: {}); correction factors decay \
         below f32 precision after ~{} elements,\nwhich is the paper's most \
         effective optimization: later warps skip Phase 1 entirely",
        report.spectral_radius,
        report.is_stable(),
        report.decay_length(f32::MIN_POSITIVE as f64).unwrap()
    );
    Ok(())
}
